"""Content-addressed artifact store for pipeline stage outputs.

Every stage output is addressed by a key that hashes the stage's own
identity (name + version), the configuration fields it reads, and the
keys of its upstream artifacts.  Two runs that share a prefix of the
stage graph therefore share the prefix's keys — and with a common store
the expensive work (training, characterization) happens exactly once.

The store has two layers:

* an in-memory dict, always on — repeated lookups within a process
  return the *same object* instantly;
* an optional on-disk cache (one pickle per key, written atomically via
  rename), so separate processes and separate runs share artifacts.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Union

import numpy as np

__all__ = ["ArtifactStore", "hash_key"]


def _jsonable(value: Any) -> Any:
    """Reduce ``value`` to canonical JSON-encodable primitives."""
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if isinstance(value, float):
        # repr round-trips doubles exactly and avoids 825 vs 825.0 drift
        return f"f:{value!r}"
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return _jsonable(float(value))
    if isinstance(value, np.ndarray):
        return [_jsonable(v) for v in value.tolist()]
    raise TypeError(
        f"cannot build a stable artifact key from {type(value).__name__}"
    )


def hash_key(payload: Any) -> str:
    """Deterministic content hash of a key payload (nested primitives)."""
    canonical = json.dumps(_jsonable(payload), sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ArtifactStore:
    """Two-layer (memory + optional disk) content-addressed store.

    Args:
        cache_dir: Directory for the on-disk layer; created on first
            write.  ``None`` keeps the store memory-only.

    Attributes:
        hits / misses: Lookup counters (``get_or_compute`` only).
        disk_hits: Subset of ``hits`` served from disk.
    """

    def __init__(self, cache_dir: Optional[Union[str, Path]] = None
                 ) -> None:
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        if self.cache_dir is not None and self.cache_dir.exists() \
                and not self.cache_dir.is_dir():
            raise ValueError(
                f"cache_dir {str(self.cache_dir)!r} exists and is not "
                f"a directory")
        self._memory: Dict[str, Any] = {}
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _path(self, key: str) -> Optional[Path]:
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"{key}.pkl"

    def _read_disk(self, key: str) -> Any:
        path = self._path(key)
        if path is None or not path.is_file():
            raise KeyError(key)
        try:
            with open(path, "rb") as handle:
                return pickle.load(handle)
        except Exception:
            # A truncated/corrupt entry (e.g. a killed writer) is a miss.
            raise KeyError(key) from None

    def _write_disk(self, key: str, value: Any) -> None:
        path = self._path(key)
        if path is None:
            return
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=self.cache_dir,
                                        prefix=f".{key[:16]}-")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(value, handle,
                            protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)  # atomic: parallel writers race OK
        except Exception:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def __contains__(self, key: str) -> bool:
        if key in self._memory:
            return True
        path = self._path(key)
        return path is not None and path.is_file()

    def __len__(self) -> int:
        return len(self._memory)

    def get(self, key: str, default: Any = None) -> Any:
        """Fetch without computing (memory first, then disk)."""
        if key in self._memory:
            return self._memory[key]
        try:
            value = self._read_disk(key)
        except KeyError:
            return default
        self._memory[key] = value
        return value

    def put(self, key: str, value: Any) -> Any:
        """Store in memory and (when configured) on disk."""
        self._memory[key] = value
        self._write_disk(key, value)
        return value

    def get_or_compute(self, key: str, compute: Callable[[], Any],
                       persist: bool = True) -> Any:
        """Return the cached artifact or compute-and-store it.

        Args:
            key: Content-addressed artifact key.
            compute: Producer invoked on a miss.
            persist: When ``False`` the artifact stays in the memory
                layer only — for outputs that are large but cheap and
                deterministic to regenerate (e.g. synthetic datasets).
        """
        if key in self._memory:
            self.hits += 1
            return self._memory[key]
        if persist:
            try:
                value = self._read_disk(key)
            except KeyError:
                pass
            else:
                self.hits += 1
                self.disk_hits += 1
                self._memory[key] = value
                return value
        self.misses += 1
        value = compute()
        if persist:
            return self.put(key, value)
        self._memory[key] = value
        return value

    def clear_memory(self) -> None:
        """Drop the in-memory layer (disk entries survive)."""
        self._memory.clear()
