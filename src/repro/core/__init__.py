"""The PowerPruning method itself (paper Sec. III).

* :mod:`repro.core.workloads` — bridges a trained quantized network to
  the systolic-array power/statistics models.
* :mod:`repro.core.pruning` — conventional magnitude pruning (the flow's
  first step).
* :mod:`repro.core.power_selection` — iterative power-threshold weight
  selection with retraining (Sec. III-A + III-C).
* :mod:`repro.core.delay_selection` — iterative delay-threshold weight
  and activation selection with retraining (Sec. III-B + III-C).
* :mod:`repro.core.voltage_scaling` — supply-voltage scaling from the
  achieved delay reduction.
* :mod:`repro.core.pipeline` — the end-to-end flow producing Table I
  rows.
* :mod:`repro.core.report` — result records and pretty-printing.
"""

from repro.core.workloads import LayerWorkload, extract_workloads
from repro.core.pruning import magnitude_prune
from repro.core.power_selection import (
    PowerSelectionOutcome,
    power_threshold_search,
)
from repro.core.delay_selection import (
    DelaySelectionOutcome,
    delay_threshold_search,
)
from repro.core.voltage_scaling import VoltageScalingOutcome, scale_voltage
from repro.core.pipeline import PowerPruner, PipelineConfig
from repro.core.report import PowerPruningReport, format_table1

__all__ = [
    "LayerWorkload",
    "extract_workloads",
    "magnitude_prune",
    "power_threshold_search",
    "PowerSelectionOutcome",
    "delay_threshold_search",
    "DelaySelectionOutcome",
    "scale_voltage",
    "VoltageScalingOutcome",
    "PowerPruner",
    "PipelineConfig",
    "PowerPruningReport",
    "format_table1",
]
