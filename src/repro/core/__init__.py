"""The PowerPruning method itself (paper Sec. III).

* :mod:`repro.core.workloads` — bridges a trained quantized network to
  the systolic-array power/statistics models.
* :mod:`repro.core.pruning` — conventional magnitude pruning (the flow's
  first step).
* :mod:`repro.core.power_selection` — iterative power-threshold weight
  selection with retraining (Sec. III-A + III-C).
* :mod:`repro.core.delay_selection` — iterative delay-threshold weight
  and activation selection with retraining (Sec. III-B + III-C).
* :mod:`repro.core.voltage_scaling` — supply-voltage scaling from the
  achieved delay reduction.
* :mod:`repro.core.artifacts` — content-addressed artifact store
  (memory + optional disk) keyed on config fields and upstream keys.
* :mod:`repro.core.stages` — the flow as an explicit stage graph with
  declared inputs/outputs, executed through the artifact store.
* :mod:`repro.core.pipeline` — the end-to-end flow producing Table I
  rows, composed from the stage graph.
* :mod:`repro.core.report` — result records and pretty-printing.
"""

from repro.core.workloads import LayerWorkload, extract_workloads
from repro.core.pruning import magnitude_prune
from repro.core.power_selection import (
    PowerSelectionOutcome,
    power_threshold_search,
)
from repro.core.delay_selection import (
    DelaySelectionOutcome,
    delay_threshold_search,
)
from repro.core.voltage_scaling import VoltageScalingOutcome, scale_voltage
from repro.core.artifacts import ArtifactStore, hash_key
from repro.core.stages import (
    PipelineOps,
    Stage,
    StageGraph,
    StageRunner,
    build_power_pruning_graph,
)
from repro.core.pipeline import PowerPruner, PipelineConfig
from repro.core.report import PowerPruningReport, format_table1

__all__ = [
    "ArtifactStore",
    "hash_key",
    "Stage",
    "StageGraph",
    "StageRunner",
    "PipelineOps",
    "build_power_pruning_graph",
    "LayerWorkload",
    "extract_workloads",
    "magnitude_prune",
    "power_threshold_search",
    "PowerSelectionOutcome",
    "delay_threshold_search",
    "DelaySelectionOutcome",
    "scale_voltage",
    "VoltageScalingOutcome",
    "PowerPruner",
    "PipelineConfig",
    "PowerPruningReport",
    "format_table1",
]
