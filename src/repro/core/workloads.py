"""From a trained quantized network to systolic-array workloads.

Each conv/dense layer of a network becomes one matmul-shaped workload:
the integer weight matrix in ``(K, N)`` layout, the tile schedule of the
64x64 array, and (optionally) the integer activation matrix the layer
processed — the raw material for both the power estimate and the Fig. 4
transition statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.nn.autograd import Tensor, _im2col, no_grad
from repro.nn.layers import Conv2d, DepthwiseConv2d, Linear, Module
from repro.nn.quant import to_codes
from repro.systolic.config import SystolicConfig
from repro.systolic.mapping import TileSchedule, schedule_matmul


@dataclass
class LayerWorkload:
    """One layer lowered to the systolic array.

    Attributes:
        name: Layer identification (class name + index).
        weights: ``(K, N)`` integer weight matrix.
        schedule: Tile schedule on the configured array.
        activations: Optional ``(K, M)`` integer activation matrix (only
            for layers whose input was captured).
    """

    name: str
    weights: np.ndarray
    schedule: TileSchedule
    activations: Optional[np.ndarray] = None

    @property
    def macs(self) -> int:
        return self.schedule.total_macs


def _activation_codes(values: np.ndarray, act_bits: int = 8) -> np.ndarray:
    """Quantize captured float activations to signed integer codes.

    The captured tensors are already fake-quantized by the preceding
    QuantReLU, so re-deriving the scale from the per-tensor peak recovers
    the codes the hardware would see.
    """
    qmax = (1 << (act_bits - 1)) - 1
    peak = float(np.abs(values).max())
    scale = peak / qmax if peak > 0 else 1.0 / qmax
    return to_codes(values, scale, -(qmax + 1), qmax)


def _layer_workload(layer, index: int, config: SystolicConfig,
                    stream_cap: int) -> LayerWorkload:
    weights = layer.matmul_weight()
    k, n = weights.shape
    activations = None

    if isinstance(layer, (Conv2d, DepthwiseConv2d)):
        if layer.last_output_hw is None:
            raise RuntimeError(
                f"layer {type(layer).__name__}#{index} has not seen a "
                f"forward pass; run the model on sample data first"
            )
        oh, ow = layer.last_output_hw
        m = oh * ow
        if layer.last_input is not None:
            codes = _activation_codes(layer.last_input, config.act_bits)
            if isinstance(layer, Conv2d):
                cols, __, __ = _im2col(
                    codes.astype(np.float64), layer.kernel_size,
                    layer.kernel_size, layer.stride, layer.pad)
                batch = cols.shape[0]
                acts = cols.transpose(1, 0, 2).reshape(k, -1)
            else:
                # Depthwise: each channel convolves independently; give
                # the stats the patch streams of the first channel group.
                cols, __, __ = _im2col(
                    codes.astype(np.float64), layer.kernel_size,
                    layer.kernel_size, layer.stride, layer.pad)
                channels = codes.shape[1]
                kk = layer.kernel_size ** 2
                acts = cols.reshape(cols.shape[0], channels, kk, -1)
                acts = acts.transpose(2, 0, 1, 3).reshape(kk, -1)
            activations = acts[:, :stream_cap].astype(np.int64)
            m = activations.shape[1]
    else:  # Linear
        m = 1
        if layer.last_input is not None:
            codes = _activation_codes(layer.last_input, config.act_bits)
            activations = codes.T[:, :stream_cap].astype(np.int64)
            m = activations.shape[1]

    schedule = schedule_matmul(k, n, max(m, 1), config)
    return LayerWorkload(
        name=f"{type(layer).__name__}#{index}",
        weights=weights,
        schedule=schedule,
        activations=activations,
    )


def extract_workloads(model: Module, x_sample: Optional[np.ndarray] = None,
                      config: Optional[SystolicConfig] = None,
                      capture_activations: bool = True,
                      stream_cap: int = 2048) -> List[LayerWorkload]:
    """Lower every conv/dense layer of ``model`` to an array workload.

    Args:
        model: Trained network.
        x_sample: Input batch to trace; required unless the model already
            saw a forward pass and activations are not needed.
        config: Array geometry (defaults to the paper's 64x64).
        capture_activations: Also record integer activation matrices
            (needed for transition statistics, costs memory).
        stream_cap: Maximum activation stream length kept per layer.
    """
    config = config or SystolicConfig()
    layers = model.quantized_layers()
    if x_sample is not None:
        for layer in layers:
            layer.capture_input = capture_activations
            layer.last_input = None  # drop any stale capture
        model.eval()
        with no_grad():
            model(Tensor(x_sample))
        for layer in layers:
            layer.capture_input = False
    return [
        _layer_workload(layer, index, config, stream_cap)
        for index, layer in enumerate(layers)
    ]


def largest_conv_workloads(workloads: Sequence[LayerWorkload],
                           top: int = 3) -> List[LayerWorkload]:
    """The ``top`` workloads by MAC count (the paper simulates only the
    convolutional layers with the most MACs for the larger networks)."""
    ranked = sorted(workloads, key=lambda w: w.macs, reverse=True)
    return list(ranked[:top])
