"""Supply-voltage scaling from the achieved delay reduction.

After selection the maximum sensitized delay is below the clock period,
so the supply can be lowered until the slowed circuit exactly fits the
original clock again (paper Sec. III-C; relation from [16], power
scaling per [17]).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cells.voltage import VoltageModel


@dataclass(frozen=True)
class VoltageScalingOutcome:
    """Chosen operating point and its scaling factors.

    Attributes:
        vdd: Scaled supply voltage (V).
        vdd_nom: Nominal supply (V).
        max_delay_ps: Sensitized delay before scaling.
        clock_period_ps: Unchanged clock period.
        dynamic_scale / leakage_scale: Power multipliers at ``vdd``.
    """

    vdd: float
    vdd_nom: float
    max_delay_ps: float
    clock_period_ps: float
    dynamic_scale: float
    leakage_scale: float

    @property
    def delay_reduction_ps(self) -> float:
        """Slack the selection opened up."""
        return self.clock_period_ps - self.max_delay_ps

    @property
    def scaling_factor_label(self) -> str:
        """Table I style ``0.71/0.8`` label."""
        return f"{self.vdd:.2f}/{self.vdd_nom:.1f}"


def scale_voltage(max_delay_ps: float, clock_period_ps: float = 180.0,
                  model: Optional[VoltageModel] = None
                  ) -> VoltageScalingOutcome:
    """Pick the lowest supply that still meets the original clock.

    Args:
        max_delay_ps: Maximum sensitized delay after selection.
        clock_period_ps: The accelerator's clock period (kept constant).
        model: Voltage-scaling laws (defaults to the calibrated FinFET
            model).
    """
    model = model or VoltageModel()
    vdd = model.min_voltage_for_slack(max_delay_ps, clock_period_ps)
    return VoltageScalingOutcome(
        vdd=vdd,
        vdd_nom=model.vdd_nom,
        max_delay_ps=max_delay_ps,
        clock_period_ps=clock_period_ps,
        dynamic_scale=model.dynamic_power_scale(vdd),
        leakage_scale=model.leakage_power_scale(vdd),
    )
