"""Iterative power-threshold weight selection with retraining.

Sec. III-A3 + III-C: starting from the 900 µW threshold, lower it step by
step; at each step restrict the network to the weight values below the
threshold, retrain with the straight-through estimator, and stop when the
inference accuracy starts to drop noticeably.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.layers import Module
from repro.nn.restrict import WeightRestriction
from repro.power.characterization import WeightPowerTable

#: The paper's threshold schedule (µW), from the initial 900 downwards.
DEFAULT_THRESHOLDS_UW = (900.0, 850.0, 825.0, 800.0)

RetrainFn = Callable[[Module], float]


@dataclass
class PowerSelectionOutcome:
    """Result of the power-threshold search.

    Attributes:
        threshold_uw: The accepted threshold (``None`` if even the first
            threshold failed and the network stays unrestricted).
        allowed_weights: Selected weight values.
        accuracy: Accuracy after retraining at the accepted threshold.
        history: ``(threshold, n_weights, accuracy)`` per tried step.
    """

    threshold_uw: Optional[float]
    allowed_weights: np.ndarray
    accuracy: float
    history: List[Tuple[float, int, float]] = field(default_factory=list)

    @property
    def n_weights(self) -> int:
        return int(self.allowed_weights.size)


def power_threshold_search(model: Module, table: WeightPowerTable,
                           retrain: RetrainFn, baseline_accuracy: float,
                           thresholds: Sequence[float] =
                           DEFAULT_THRESHOLDS_UW,
                           max_drop: float = 0.03) -> PowerSelectionOutcome:
    """Find the lowest power threshold the network tolerates.

    Args:
        model: Trained (and conventionally pruned) network; modified in
            place — on return it carries the accepted restriction and the
            retrained weights.
        table: Per-weight power characterization.
        retrain: Retrains the model in place and returns test accuracy.
        baseline_accuracy: Accuracy before any restriction.
        thresholds: Descending threshold schedule in µW.
        max_drop: Acceptable absolute accuracy drop ("starts to drop
            noticeably" operationalized).
    """
    thresholds = sorted(thresholds, reverse=True)
    history: List[Tuple[float, int, float]] = []
    accepted: Optional[Tuple[float, np.ndarray, float, dict]] = None

    start_state = model.state_dict()
    for threshold in thresholds:
        allowed = table.select_below(threshold)
        if allowed.size < 2:
            break  # only the zero weight left; nothing can be learned
        model.load_state_dict(start_state)
        model.set_weight_restriction(WeightRestriction(allowed))
        acc = retrain(model)
        history.append((threshold, int(allowed.size), acc))
        if acc >= baseline_accuracy - max_drop:
            accepted = (threshold, allowed, acc, model.state_dict())
        else:
            break  # accuracy dropped noticeably; keep the previous step

    if accepted is None:
        # No threshold tolerated: revert to the unrestricted network.
        model.load_state_dict(start_state)
        model.set_weight_restriction(None)
        return PowerSelectionOutcome(
            threshold_uw=None,
            allowed_weights=table.weights.copy(),
            accuracy=baseline_accuracy,
            history=history,
        )

    threshold, allowed, acc, state = accepted
    model.load_state_dict(state)
    model.set_weight_restriction(WeightRestriction(allowed))
    return PowerSelectionOutcome(
        threshold_uw=threshold,
        allowed_weights=allowed,
        accuracy=acc,
        history=history,
    )
