"""The end-to-end PowerPruning flow (training -> Table I row).

Stages, mirroring Sec. III-C:

1. Train the 8-bit QAT baseline and measure its accuracy and power.
2. Conventional magnitude pruning + retraining.
3. Characterize per-weight MAC power from the network's own operand
   statistics; iteratively lower the power threshold with retraining.
4. Characterize per-weight timing; iteratively lower the delay threshold
   selecting weights *and* activations, with retraining.
5. Scale the supply voltage into the freed timing slack.
6. Estimate Standard-HW / Optimized-HW power of the final network.

The flow itself lives in :mod:`repro.core.stages` as an explicit stage
graph; :class:`PowerPruner` composes it through a content-addressed
:class:`~repro.core.artifacts.ArtifactStore`, so repeated runs — and
any experiment sharing the store or an on-disk cache directory — reuse
every unchanged stage prefix instantly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.core.artifacts import ArtifactStore
from repro.core.delay_selection import DEFAULT_THRESHOLDS_PS
from repro.core.power_selection import DEFAULT_THRESHOLDS_UW
from repro.core.report import PowerPruningReport
from repro.core.stages import (
    PipelineOps,
    StageRunner,
    build_power_pruning_graph,
)
from repro.hw import DEFAULT_BACKEND_ID
from repro.systolic.spec import AcceleratorSpec

#: Weight values referenced throughout the paper's figures; always
#: characterized regardless of the CI-scale stride.
CHAR_ANCHOR_WEIGHTS = (-105, -64, -2, -1, 0, 1, 2, 64, 105, 127)

#: One shared, immutable graph instance — stages are stateless, so every
#: pruner/runner can reuse it.
POWER_PRUNING_GRAPH = build_power_pruning_graph()


@dataclass
class PipelineConfig:
    """Scale and hyper-parameters of one pipeline run.

    The defaults are the CI scale: everything runs on a CPU in about a
    minute per network.  ``paper`` values are noted per field.
    """

    network: str = "lenet5"
    dataset: str = "cifar10"
    #: Hardware backend id (see :mod:`repro.hw`); participates in every
    #: stage cache key, so artifacts from different backends can never
    #: collide in a shared store.
    backend: str = DEFAULT_BACKEND_ID
    #: Processes to shard per-weight characterization over (0 = all
    #: cores).  Sharding is bit-for-bit equal to a serial run, so this
    #: knob is deliberately absent from all stage cache keys.
    char_jobs: int = 1
    #: Weights per one-launch characterization megabatch (0 = automatic
    #: memory-aware sizing, 1 = the per-weight oracle loop).  Batching
    #: is bit-for-bit equal to the per-weight loop and composes with
    #: ``char_jobs``, so this knob is deliberately absent from all
    #: stage cache keys too.
    char_batch_weights: int = 0
    #: Simulation word-kernel selection (``auto``/``compiled``/
    #: ``packed``; see :mod:`repro.sim.compiled`).  Every kernel is
    #: bit-for-bit identical, so — like ``char_jobs`` — this knob is
    #: deliberately absent from all stage cache keys.  The
    #: ``REPRO_SIM_KERNEL`` environment variable overrides it.
    sim_kernel: str = "auto"
    num_classes: int = 10
    width_mult: float = 0.5          # paper: 1.0
    depth_mult: float = 1.0
    n_train: int = 800               # paper: full dataset
    n_test: int = 300
    baseline_epochs: int = 5         # paper: full training schedules
    retrain_epochs: int = 2
    batch_size: int = 32
    lr: float = 0.05
    lr_decay_epochs: tuple = ()
    prune_fraction: float = 0.5
    char_weight_step: int = 4        # paper: 1 (all 255 values)
    char_samples: int = 1500         # paper: 10000
    timing_transitions: Optional[int] = 8000   # paper: None (all 2^16)
    timing_floor_ps: float = 100.0
    power_thresholds_uw: Sequence[float] = DEFAULT_THRESHOLDS_UW
    delay_thresholds_ps: Sequence[float] = DEFAULT_THRESHOLDS_PS
    power_max_drop: float = 0.03
    delay_max_drop_fraction: float = 0.05
    n_restarts: int = 20
    stats_layers: int = 3
    stats_batch: int = 16
    clock_power_uw: float = 80.0
    refine_power_with_filtered_activations: bool = False
    #: Accelerator design point evaluated by the ``accel_schedule`` /
    #: ``accel_eval`` stages.  ``None`` means the backend's own
    #: geometry on Standard HW; deliberately keyed ONLY into the
    #: ``accel_*`` stage keys (via :attr:`accel_geometry` /
    #: :attr:`accel_point`), so sweeping the accelerator design space
    #: shares the whole training/characterization prefix.
    accel: Optional[AcceleratorSpec] = None
    seed: int = 0
    verbose: bool = False

    def accel_spec(self) -> AcceleratorSpec:
        """The accelerator design point, defaulted when unset."""
        return self.accel if self.accel is not None else AcceleratorSpec()

    def _resolved_accel(self) -> AcceleratorSpec:
        """Spec with ``None`` geometry resolved against the backend, so
        an explicit 64x64 request and the default geometry of a 64x64
        backend hash to the same ``accel_*`` keys."""
        from repro.hw import get_backend
        base = get_backend(self.backend).build_systolic_config()
        return self.accel_spec().resolved(base)

    @property
    def accel_geometry(self) -> Dict[str, object]:
        """``accel_schedule`` key payload: geometry + mapping only —
        the hardware variant shares one schedule."""
        return self._resolved_accel().geometry_payload()

    @property
    def accel_point(self) -> Dict[str, object]:
        """``accel_eval`` key payload: geometry + mapping + variant."""
        return self._resolved_accel().key_payload()

    def char_weights(self) -> Tuple[int, ...]:
        """Weight values to characterize (stride-reduced at CI scale).

        The result is cached per ``char_weight_step`` — stage-key
        hashing and repeated characterizations hit the same tuple.
        """
        cached = self.__dict__.get("_char_weights_cache")
        if cached is not None and cached[0] == self.char_weight_step:
            return cached[1]
        weights = set(range(-127, 128, max(1, self.char_weight_step)))
        weights.update(CHAR_ANCHOR_WEIGHTS)
        result = tuple(sorted(weights))
        self.__dict__["_char_weights_cache"] = (self.char_weight_step,
                                                result)
        return result


class PowerPruner:
    """Runs the full PowerPruning flow for one network/dataset pair.

    Args:
        config: Scale and hyper-parameters; CI defaults when omitted.
        cache_dir: Optional on-disk artifact cache — runs (and worker
            processes) pointing at the same directory share every
            unchanged stage.
        store: An existing :class:`ArtifactStore` to share in-process;
            overrides ``cache_dir``.
    """

    def __init__(self, config: Optional[PipelineConfig] = None,
                 cache_dir=None,
                 store: Optional[ArtifactStore] = None) -> None:
        self.config = config or PipelineConfig()
        self.graph = POWER_PRUNING_GRAPH
        self.ops = PipelineOps(self.config)
        self.store = store if store is not None else ArtifactStore(
            cache_dir)
        self.artifacts: Dict[str, object] = {}
        # Shared hardware models, kept as attributes for compatibility.
        self.library = self.ops.library
        self.mac = self.ops.mac
        self.systolic_config = self.ops.systolic_config
        self.voltage_model = self.ops.voltage_model

    def runner(self) -> StageRunner:
        """A stage runner over this pruner's config and store."""
        return StageRunner(self.graph, self.ops, self.store)

    # ------------------------------------------------------------------
    # helper stages (compatibility wrappers around the ops backend)
    # ------------------------------------------------------------------
    def _log(self, message: str) -> None:
        self.ops.log(message)

    def _build_dataset(self):
        return self.ops.build_dataset()

    def _retrain_fn(self, dataset):
        return self.ops.retrain_fn(dataset)

    def collect_statistics(self, model, dataset):
        """Run the network's hottest layers through the array, collecting
        the Fig. 4 transition statistics."""
        return self.ops.collect_statistics(model, dataset)

    def characterize_power(self, stats):
        """Per-weight power table from measured operand statistics."""
        return self.ops.characterize_power(stats)

    def characterize_timing(self, candidate_weights):
        """Per-weight timing table for the power-selected candidates."""
        return self.ops.characterize_timing(candidate_weights)

    def measure_power(self, model, dataset, table, vdd=None):
        """(Standard HW, Optimized HW) average power of the network."""
        return self.ops.measure_power(model, dataset, table, vdd=vdd)

    # ------------------------------------------------------------------
    # the full flow
    # ------------------------------------------------------------------
    def run(self) -> PowerPruningReport:
        """Execute (or resume from cache) every stage; return the report.

        Stage outputs are mirrored into :attr:`artifacts` under their
        historical names.
        """
        runner = self.runner()
        report = runner.get("report")

        power = runner.get("power_measurement")
        self.artifacts.update({
            "accuracy_orig": runner.get("baseline")["accuracy"],
            "operand_stats": runner.get("operand_stats"),
            "power_table": runner.get("power_table"),
            "power_selection": runner.get("power_selection")["outcome"],
            "timing_table": runner.get("timing_table"),
            "delay_selection": runner.get("delay_selection")["outcome"],
            "voltage_scaling": runner.get("voltage_scaling"),
            "pruned": report.extras["pruned"],
        })
        if power["filtered_table"] is not None:
            self.artifacts["power_table_filtered"] = power[
                "filtered_table"]
        return report
