"""The end-to-end PowerPruning flow (training -> Table I row).

Stages, mirroring Sec. III-C:

1. Train the 8-bit QAT baseline and measure its accuracy and power.
2. Conventional magnitude pruning + retraining.
3. Characterize per-weight MAC power from the network's own operand
   statistics; iteratively lower the power threshold with retraining.
4. Characterize per-weight timing; iteratively lower the delay threshold
   selecting weights *and* activations, with retraining.
5. Scale the supply voltage into the freed timing slack.
6. Estimate Standard-HW / Optimized-HW power of the final network.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cells import default_library
from repro.cells.voltage import VoltageModel
from repro.core.delay_selection import (
    DEFAULT_THRESHOLDS_PS,
    delay_threshold_search,
)
from repro.core.power_selection import (
    DEFAULT_THRESHOLDS_UW,
    power_threshold_search,
)
from repro.core.pruning import magnitude_prune
from repro.core.report import PowerPruningReport
from repro.core.voltage_scaling import scale_voltage
from repro.core.workloads import (
    LayerWorkload,
    extract_workloads,
    largest_conv_workloads,
)
from repro.data import load_dataset
from repro.models import build_model
from repro.netlist import build_mac_unit
from repro.nn import Trainer, TrainingConfig
from repro.nn.layers import Module
from repro.power import WeightPowerCharacterizer
from repro.power.characterization import WeightPowerTable
from repro.power.estimator import PowerBreakdown
from repro.systolic import (
    OPTIMIZED_HW,
    STANDARD_HW,
    ArrayPowerModel,
    MacPowerParams,
    SystolicArray,
    SystolicConfig,
    TransitionStatsCollector,
)
from repro.timing import WeightDelayProfiler, WeightTimingTable


@dataclass
class PipelineConfig:
    """Scale and hyper-parameters of one pipeline run.

    The defaults are the CI scale: everything runs on a CPU in about a
    minute per network.  ``paper`` values are noted per field.
    """

    network: str = "lenet5"
    dataset: str = "cifar10"
    num_classes: int = 10
    width_mult: float = 0.5          # paper: 1.0
    depth_mult: float = 1.0
    n_train: int = 800               # paper: full dataset
    n_test: int = 300
    baseline_epochs: int = 5         # paper: full training schedules
    retrain_epochs: int = 2
    batch_size: int = 32
    lr: float = 0.05
    lr_decay_epochs: tuple = ()
    prune_fraction: float = 0.5
    char_weight_step: int = 4        # paper: 1 (all 255 values)
    char_samples: int = 1500         # paper: 10000
    timing_transitions: Optional[int] = 8000   # paper: None (all 2^16)
    timing_floor_ps: float = 100.0
    power_thresholds_uw: Sequence[float] = DEFAULT_THRESHOLDS_UW
    delay_thresholds_ps: Sequence[float] = DEFAULT_THRESHOLDS_PS
    power_max_drop: float = 0.03
    delay_max_drop_fraction: float = 0.05
    n_restarts: int = 20
    stats_layers: int = 3
    stats_batch: int = 16
    clock_power_uw: float = 80.0
    refine_power_with_filtered_activations: bool = False
    seed: int = 0
    verbose: bool = False

    def char_weights(self) -> List[int]:
        """Weight values to characterize (stride-reduced at CI scale)."""
        weights = set(range(-127, 128, max(1, self.char_weight_step)))
        # Anchor values referenced throughout the paper's figures.
        weights.update((-105, -64, -2, -1, 0, 1, 2, 64, 105, 127, -127))
        return sorted(weights)


class PowerPruner:
    """Runs the full PowerPruning flow for one network/dataset pair."""

    def __init__(self, config: Optional[PipelineConfig] = None) -> None:
        self.config = config or PipelineConfig()
        self.library = default_library()
        self.mac = build_mac_unit()
        self.systolic_config = SystolicConfig()
        self.voltage_model = VoltageModel()
        self.artifacts: Dict[str, object] = {}

    # ------------------------------------------------------------------
    # helper stages
    # ------------------------------------------------------------------
    def _log(self, message: str) -> None:
        if self.config.verbose:
            print(f"[powerpruner] {message}")

    def _build_dataset(self):
        config = self.config
        kwargs = {"n_train": config.n_train, "n_test": config.n_test}
        if config.dataset in ("cifar100", "imagenet"):
            kwargs["num_classes"] = config.num_classes
        return load_dataset(config.dataset, **kwargs)

    def _trainer(self, model: Module, epochs: int) -> Trainer:
        config = self.config
        decay = tuple(e for e in config.lr_decay_epochs if e < epochs)
        return Trainer(model, TrainingConfig(
            epochs=epochs, batch_size=config.batch_size, lr=config.lr,
            lr_decay_epochs=decay, seed=config.seed, verbose=False))

    def _retrain_fn(self, dataset):
        def retrain(model: Module) -> float:
            trainer = self._trainer(model, self.config.retrain_epochs)
            trainer.fit(dataset.x_train, dataset.y_train)
            return trainer.evaluate(dataset.x_test, dataset.y_test)

        return retrain

    def collect_statistics(self, model: Module, dataset
                           ) -> TransitionStatsCollector:
        """Run the network's hottest layers through the array, collecting
        the Fig. 4 transition statistics."""
        sample = dataset.x_test[:self.config.stats_batch]
        workloads = extract_workloads(model, sample, self.systolic_config)
        self.artifacts["workloads_traced"] = workloads
        stats = TransitionStatsCollector(
            act_bits=self.systolic_config.act_bits,
            psum_bits=self.systolic_config.psum_bits,
            seed=self.config.seed,
        )
        array = SystolicArray(self.systolic_config)
        hottest = largest_conv_workloads(workloads,
                                         top=self.config.stats_layers)
        for workload in hottest:
            if workload.activations is None:
                continue
            array.run_layer(workload.weights, workload.activations,
                            stats=stats)
        return stats

    def characterize_power(self, stats: TransitionStatsCollector
                           ) -> WeightPowerTable:
        """Per-weight power table from measured operand statistics."""
        act_dist = stats.activation_distribution()
        binned = stats.binned_psum_transitions(n_bins=50,
                                               seed=self.config.seed)
        self.artifacts["act_distribution"] = act_dist
        self.artifacts["psum_binned"] = binned
        characterizer = WeightPowerCharacterizer(
            self.mac, self.library, act_dist, binned,
            clock_period_ps=self.systolic_config.clock_period_ps,
            n_samples=self.config.char_samples,
        )
        return characterizer.characterize(self.config.char_weights(),
                                          seed=self.config.seed)

    def characterize_timing(self, candidate_weights: Sequence[int]
                            ) -> WeightTimingTable:
        """Per-weight timing table for the power-selected candidates."""
        profiler = WeightDelayProfiler(self.mac, self.library)
        transitions = None
        if self.config.timing_transitions is not None:
            act_from, act_to = profiler.all_transitions()
            rng = np.random.default_rng(self.config.seed)
            chosen = rng.choice(
                act_from.size,
                size=min(self.config.timing_transitions, act_from.size),
                replace=False,
            )
            transitions = (act_from[chosen], act_to[chosen])
        return WeightTimingTable.characterize(
            profiler, weights=candidate_weights, transitions=transitions,
            floor_ps=self.config.timing_floor_ps,
        )

    def recharacterize_filtered(self, allowed_activations
                                ) -> WeightPowerTable:
        """Re-run the power characterization under the activation filter.

        Extension beyond the paper: once activation selection removes
        values, the transitions feeding the MAC change — transitions into
        or out of removed codes can no longer occur, which lowers the
        effective switching activity.  The refined table keeps the
        original calibration (``calibrate_to_uw=None`` + the recorded
        energy scale) so the numbers stay comparable.
        """
        from repro.power.transitions import value_to_code

        act_dist = self.artifacts["act_distribution"]
        binned = self.artifacts["psum_binned"]
        base_table: WeightPowerTable = self.artifacts["power_table"]
        codes = value_to_code(np.asarray(allowed_activations),
                              self.systolic_config.act_bits)
        restricted = act_dist.restricted(codes)
        characterizer = WeightPowerCharacterizer(
            self.mac, self.library, restricted, binned,
            clock_period_ps=self.systolic_config.clock_period_ps,
            n_samples=self.config.char_samples,
            calibrate_to_uw=None,
        )
        table = characterizer.characterize(self.config.char_weights(),
                                           seed=self.config.seed)
        # Re-apply the baseline table's calibration factor.
        return WeightPowerTable(
            weights=table.weights,
            power_uw=table.dynamic_uw * base_table.energy_scale
            + table.leakage_uw,
            dynamic_uw=table.dynamic_uw * base_table.energy_scale,
            leakage_uw=table.leakage_uw,
            clock_period_ps=table.clock_period_ps,
            energy_scale=base_table.energy_scale,
        )

    def measure_power(self, model: Module, dataset,
                      table: WeightPowerTable,
                      vdd: Optional[float] = None
                      ) -> Tuple[PowerBreakdown, PowerBreakdown]:
        """(Standard HW, Optimized HW) average power of the network."""
        sample = dataset.x_test[:2]
        workloads = extract_workloads(model, sample, self.systolic_config,
                                      capture_activations=False)
        power_model = ArrayPowerModel(
            self.systolic_config,
            MacPowerParams(table=table,
                           clock_power_uw=self.config.clock_power_uw),
            voltage_model=self.voltage_model,
        )
        layers = [(w.schedule, w.weights) for w in workloads]
        return (power_model.network_power(layers, STANDARD_HW, vdd=vdd),
                power_model.network_power(layers, OPTIMIZED_HW, vdd=vdd))

    # ------------------------------------------------------------------
    # the full flow
    # ------------------------------------------------------------------
    def run(self) -> PowerPruningReport:
        config = self.config
        dataset = self._build_dataset()
        from repro.nn.layers import seed_init

        seed_init(config.seed)  # bitwise-reproducible initialization
        model = build_model(config.network, num_classes=config.num_classes,
                            width_mult=config.width_mult,
                            depth_mult=config.depth_mult)
        retrain = self._retrain_fn(dataset)

        # 1. baseline QAT training
        self._log(f"training {config.network} baseline")
        trainer = self._trainer(model, config.baseline_epochs)
        trainer.fit(dataset.x_train, dataset.y_train)
        accuracy_orig = trainer.evaluate(dataset.x_test, dataset.y_test)
        self._log(f"baseline accuracy {accuracy_orig:.3f}")

        # 2. operand statistics + power characterization
        stats = self.collect_statistics(model, dataset)
        power_table = self.characterize_power(stats)
        self.artifacts["power_table"] = power_table

        # original power (before any of the method's steps)
        power_std_orig, power_opt_orig = self.measure_power(
            model, dataset, power_table)
        self.artifacts["accuracy_orig"] = accuracy_orig

        # 3. conventional pruning + retraining (Fig. 7 "Pruned" stage)
        magnitude_prune(model, config.prune_fraction)
        accuracy_pruned = retrain(model)
        power_std_pruned, power_opt_pruned = self.measure_power(
            model, dataset, power_table)
        self.artifacts["pruned"] = {
            "accuracy": accuracy_pruned,
            "power_std": power_std_pruned,
            "power_opt": power_opt_pruned,
        }
        self._log(f"pruned accuracy {accuracy_pruned:.3f}")

        # 4. power-threshold weight selection
        power_outcome = power_threshold_search(
            model, power_table, retrain,
            baseline_accuracy=accuracy_pruned,
            thresholds=config.power_thresholds_uw,
            max_drop=config.power_max_drop,
        )
        self.artifacts["power_selection"] = power_outcome
        self._log(
            f"power threshold {power_outcome.threshold_uw} -> "
            f"{power_outcome.n_weights} weights, "
            f"accuracy {power_outcome.accuracy:.3f}"
        )

        # 5. timing characterization + delay-threshold selection
        timing_table = self.characterize_timing(
            power_outcome.allowed_weights)
        self.artifacts["timing_table"] = timing_table
        delay_outcome = delay_threshold_search(
            model, timing_table,
            candidate_weights=power_outcome.allowed_weights,
            retrain=retrain, original_accuracy=accuracy_orig,
            thresholds=config.delay_thresholds_ps,
            max_drop_fraction=config.delay_max_drop_fraction,
            n_restarts=config.n_restarts, seed=config.seed,
        )
        self.artifacts["delay_selection"] = delay_outcome
        self._log(
            f"delay threshold {delay_outcome.threshold_ps} -> "
            f"accuracy {delay_outcome.accuracy:.3f}"
        )

        # 6. voltage scaling into the freed slack.  The paper reads the
        # achieved max delay at its 10 ps search granularity, i.e. the
        # accepted threshold, not the exact surviving-combo maximum.
        achieved_delay = (delay_outcome.threshold_ps
                          if delay_outcome.threshold_ps is not None
                          else delay_outcome.max_delay_ps)
        scaling = scale_voltage(
            achieved_delay,
            self.systolic_config.clock_period_ps,
            self.voltage_model,
        )
        self.artifacts["voltage_scaling"] = scaling

        # final power with and without voltage scaling
        final_table = power_table
        if (config.refine_power_with_filtered_activations
                and delay_outcome.selection is not None):
            final_table = self.recharacterize_filtered(
                delay_outcome.selection.activations)
            self.artifacts["power_table_filtered"] = final_table
        power_std_prop, power_opt_prop = self.measure_power(
            model, dataset, final_table)
        power_std_vs, power_opt_vs = self.measure_power(
            model, dataset, final_table, vdd=scaling.vdd)

        if delay_outcome.selection is not None:
            n_weights = delay_outcome.selection.n_weights
            n_acts = delay_outcome.selection.n_activations
        else:
            n_weights = power_outcome.n_weights
            n_acts = 1 << self.systolic_config.act_bits
        accuracy_prop = delay_outcome.accuracy

        return PowerPruningReport(
            network=config.network,
            dataset=config.dataset,
            accuracy_orig=accuracy_orig,
            accuracy_prop=accuracy_prop,
            power_std_orig=power_std_orig,
            power_std_prop=power_std_prop,
            power_std_prop_vs=power_std_vs,
            power_opt_orig=power_opt_orig,
            power_opt_prop=power_opt_prop,
            power_opt_prop_vs=power_opt_vs,
            n_selected_weights=n_weights,
            n_selected_activations=n_acts,
            max_delay_reduction_ps=scaling.delay_reduction_ps,
            voltage_label=scaling.scaling_factor_label,
            power_threshold_uw=power_outcome.threshold_uw,
            delay_threshold_ps=delay_outcome.threshold_ps,
            extras={"pruned": self.artifacts["pruned"]},
        )
