"""Model registry keyed by the paper's network names."""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.models.efficientnet import EfficientNetB0Lite
from repro.models.lenet import LeNet5
from repro.models.resnet import resnet20, resnet50
from repro.nn.layers import Module
from repro.nn.quant import QuantConfig


def _lenet5(num_classes: int, width_mult: float, depth_mult: float,
            quant: Optional[QuantConfig]) -> Module:
    return LeNet5(num_classes=num_classes, width_mult=width_mult,
                  quant=quant)


def _resnet20(num_classes: int, width_mult: float, depth_mult: float,
              quant: Optional[QuantConfig]) -> Module:
    return resnet20(num_classes=num_classes, width_mult=width_mult,
                    depth_mult=depth_mult, quant=quant)


def _resnet50(num_classes: int, width_mult: float, depth_mult: float,
              quant: Optional[QuantConfig]) -> Module:
    return resnet50(num_classes=num_classes, width_mult=width_mult,
                    depth_mult=depth_mult, quant=quant)


def _efficientnet_b0_lite(num_classes: int, width_mult: float,
                          depth_mult: float,
                          quant: Optional[QuantConfig]) -> Module:
    return EfficientNetB0Lite(num_classes=num_classes,
                              width_mult=width_mult,
                              depth_mult=depth_mult, quant=quant)


#: Builders keyed by the names used in the paper's Table I.
MODEL_BUILDERS: Dict[str, Callable[..., Module]] = {
    "lenet5": _lenet5,
    "resnet20": _resnet20,
    "resnet50": _resnet50,
    "efficientnet-b0-lite": _efficientnet_b0_lite,
}


def build_model(name: str, num_classes: int, width_mult: float = 1.0,
                depth_mult: float = 1.0,
                quant: Optional[QuantConfig] = None) -> Module:
    """Instantiate a registered architecture.

    Args:
        name: One of ``lenet5``, ``resnet20``, ``resnet50``,
            ``efficientnet-b0-lite``.
        num_classes: Output classes.
        width_mult / depth_mult: Reduced-scale multipliers.
        quant: Quantization configuration (8-bit QAT default).
    """
    try:
        builder = MODEL_BUILDERS[name]
    except KeyError:
        raise ValueError(
            f"unknown model {name!r}; available: "
            f"{sorted(MODEL_BUILDERS)}"
        ) from None
    return builder(num_classes, width_mult, depth_mult, quant)
