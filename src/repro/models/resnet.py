"""CIFAR-style ResNets: ResNet-20 (basic blocks) and ResNet-50
(bottleneck blocks), both width/depth scalable.

The paper evaluates ResNet-20 on CIFAR-10 and ResNet-50 on CIFAR-100;
both operate on 32x32 inputs with the usual CIFAR stem (3x3 conv, no
max-pool).
"""

from __future__ import annotations

from typing import List, Optional

from repro.nn.autograd import Tensor
from repro.nn.layers import (
    BatchNorm2d,
    Conv2d,
    GlobalAvgPool2d,
    Linear,
    Module,
    QuantReLU,
)
from repro.nn.quant import QuantConfig


class BasicBlock(Module):
    """Two 3x3 convolutions with an identity/projection shortcut."""

    def __init__(self, in_channels: int, out_channels: int,
                 stride: int = 1,
                 quant: Optional[QuantConfig] = None) -> None:
        super().__init__()
        self.conv1 = Conv2d(in_channels, out_channels, 3, stride=stride,
                            pad=1, bias=False, quant=quant)
        self.bn1 = BatchNorm2d(out_channels)
        self.act1 = QuantReLU(quant)
        self.conv2 = Conv2d(out_channels, out_channels, 3, pad=1,
                            bias=False, quant=quant)
        self.bn2 = BatchNorm2d(out_channels)
        self.act2 = QuantReLU(quant)
        self.shortcut: Optional[Module] = None
        self.shortcut_bn: Optional[Module] = None
        if stride != 1 or in_channels != out_channels:
            self.shortcut = Conv2d(in_channels, out_channels, 1,
                                   stride=stride, bias=False, quant=quant)
            self.shortcut_bn = BatchNorm2d(out_channels)

    def forward(self, x: Tensor) -> Tensor:
        out = self.act1(self.bn1(self.conv1(x)))
        out = self.bn2(self.conv2(out))
        residual = x
        if self.shortcut is not None:
            residual = self.shortcut_bn(self.shortcut(x))
        return self.act2(out + residual)


class BottleneckBlock(Module):
    """1x1 reduce -> 3x3 -> 1x1 expand with shortcut (expansion 4)."""

    expansion = 4

    def __init__(self, in_channels: int, mid_channels: int,
                 stride: int = 1,
                 quant: Optional[QuantConfig] = None) -> None:
        super().__init__()
        out_channels = mid_channels * self.expansion
        self.conv1 = Conv2d(in_channels, mid_channels, 1, bias=False,
                            quant=quant)
        self.bn1 = BatchNorm2d(mid_channels)
        self.act1 = QuantReLU(quant)
        self.conv2 = Conv2d(mid_channels, mid_channels, 3, stride=stride,
                            pad=1, bias=False, quant=quant)
        self.bn2 = BatchNorm2d(mid_channels)
        self.act2 = QuantReLU(quant)
        self.conv3 = Conv2d(mid_channels, out_channels, 1, bias=False,
                            quant=quant)
        self.bn3 = BatchNorm2d(out_channels)
        self.act3 = QuantReLU(quant)
        self.shortcut: Optional[Module] = None
        self.shortcut_bn: Optional[Module] = None
        if stride != 1 or in_channels != out_channels:
            self.shortcut = Conv2d(in_channels, out_channels, 1,
                                   stride=stride, bias=False, quant=quant)
            self.shortcut_bn = BatchNorm2d(out_channels)

    def forward(self, x: Tensor) -> Tensor:
        out = self.act1(self.bn1(self.conv1(x)))
        out = self.act2(self.bn2(self.conv2(out)))
        out = self.bn3(self.conv3(out))
        residual = x
        if self.shortcut is not None:
            residual = self.shortcut_bn(self.shortcut(x))
        return self.act3(out + residual)


class ResNet(Module):
    """CIFAR-style residual network.

    Args:
        block: ``BasicBlock`` or ``BottleneckBlock``.
        blocks_per_stage: Number of blocks in each of the three stages.
        base_width: Channels of the first stage (doubles per stage).
        num_classes: Output classes.
        quant: Quantization configuration.
    """

    def __init__(self, block, blocks_per_stage: List[int],
                 base_width: int = 16, num_classes: int = 10,
                 in_channels: int = 3,
                 quant: Optional[QuantConfig] = None) -> None:
        super().__init__()
        quant = quant or QuantConfig()
        self.stem = Conv2d(in_channels, base_width, 3, pad=1, bias=False,
                           quant=quant)
        self.stem_bn = BatchNorm2d(base_width)
        self.stem_act = QuantReLU(quant)

        self.blocks: List[Module] = []
        channels = base_width
        for stage, n_blocks in enumerate(blocks_per_stage):
            stage_width = base_width * (2 ** stage)
            for index in range(n_blocks):
                stride = 2 if stage > 0 and index == 0 else 1
                self.blocks.append(
                    block(channels, stage_width, stride=stride,
                          quant=quant)
                )
                expansion = getattr(block, "expansion", 1)
                channels = stage_width * expansion
        self.pool = GlobalAvgPool2d()
        self.classifier = Linear(channels, num_classes, quant=quant)

    def forward(self, x: Tensor) -> Tensor:
        x = self.stem_act(self.stem_bn(self.stem(x)))
        for block in self.blocks:
            x = block(x)
        x = self.pool(x)
        return self.classifier(x)


def resnet20(num_classes: int = 10, width_mult: float = 1.0,
             depth_mult: float = 1.0,
             quant: Optional[QuantConfig] = None) -> ResNet:
    """ResNet-20: three stages of three basic blocks (16/32/64 wide)."""
    n = max(1, int(round(3 * depth_mult)))
    width = max(4, int(round(16 * width_mult)))
    return ResNet(BasicBlock, [n, n, n], base_width=width,
                  num_classes=num_classes, quant=quant)


def resnet50(num_classes: int = 100, width_mult: float = 1.0,
             depth_mult: float = 1.0,
             quant: Optional[QuantConfig] = None) -> ResNet:
    """ResNet-50-style bottleneck network adapted to 32x32 inputs.

    Three stages with [3, 4, 6]-ish block counts (the classic ImageNet
    stage of 3 blocks at stride 32 does not fit 32x32 inputs, so the
    paper-standard CIFAR adaptation with three stages is used).
    """
    counts = [max(1, int(round(c * depth_mult))) for c in (3, 4, 6)]
    width = max(4, int(round(16 * width_mult)))
    return ResNet(BottleneckBlock, counts, base_width=width,
                  num_classes=num_classes, quant=quant)
