"""EfficientNet-B0-Lite, width/depth scalable, for small inputs.

The "Lite" variants drop squeeze-and-excitation and swap SiLU for ReLU6,
which is what makes them friendly to integer-only accelerators — exactly
why the paper picks B0-Lite for its ImageNet experiment.  The block
structure below follows the B0 stage table (expand ratios, strides,
channel counts) scaled down for 32x32-class inputs: the stem stride and
the first downsampling are reduced so the spatial dimensions survive.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.nn.autograd import Tensor
from repro.nn.layers import (
    BatchNorm2d,
    Conv2d,
    DepthwiseConv2d,
    GlobalAvgPool2d,
    Linear,
    Module,
    QuantReLU,
)
from repro.nn.quant import QuantConfig


class MBConvBlock(Module):
    """Mobile inverted bottleneck: expand 1x1 -> depthwise -> project 1x1.

    No squeeze-and-excitation (Lite variant).  A residual connection is
    used when the stride is 1 and the channel count is preserved.
    """

    def __init__(self, in_channels: int, out_channels: int,
                 expand_ratio: int, stride: int = 1, kernel: int = 3,
                 quant: Optional[QuantConfig] = None) -> None:
        super().__init__()
        mid = in_channels * expand_ratio
        self.use_residual = stride == 1 and in_channels == out_channels
        self.expand: Optional[Conv2d] = None
        self.expand_bn: Optional[BatchNorm2d] = None
        self.expand_act: Optional[QuantReLU] = None
        if expand_ratio != 1:
            self.expand = Conv2d(in_channels, mid, 1, bias=False,
                                 quant=quant)
            self.expand_bn = BatchNorm2d(mid)
            self.expand_act = QuantReLU(quant, six=True)
        self.depthwise = DepthwiseConv2d(mid, kernel, stride=stride,
                                         pad=kernel // 2, bias=False,
                                         quant=quant)
        self.depthwise_bn = BatchNorm2d(mid)
        self.depthwise_act = QuantReLU(quant, six=True)
        self.project = Conv2d(mid, out_channels, 1, bias=False,
                              quant=quant)
        self.project_bn = BatchNorm2d(out_channels)

    def forward(self, x: Tensor) -> Tensor:
        out = x
        if self.expand is not None:
            out = self.expand_act(self.expand_bn(self.expand(out)))
        out = self.depthwise_act(self.depthwise_bn(self.depthwise(out)))
        out = self.project_bn(self.project(out))
        if self.use_residual:
            out = out + x
        return out


#: B0 stage table: (expand_ratio, channels, n_blocks, stride, kernel).
_B0_STAGES: Tuple[Tuple[int, int, int, int, int], ...] = (
    (1, 16, 1, 1, 3),
    (6, 24, 2, 2, 3),
    (6, 40, 2, 2, 5),
    (6, 80, 3, 2, 3),
    (6, 112, 3, 1, 5),
    (6, 192, 4, 2, 5),
    (6, 320, 1, 1, 3),
)


class EfficientNetB0Lite(Module):
    """EfficientNet-B0-Lite with scalable width/depth.

    Args:
        num_classes: Output classes.
        width_mult / depth_mult: Compound-scaling style multipliers;
            reduced-scale experiments use values < 1.
        stages: How many of the seven B0 stages to keep (small inputs run
            out of spatial resolution after ~4 downsamplings).
        quant: Quantization configuration.
    """

    def __init__(self, num_classes: int = 1000, width_mult: float = 1.0,
                 depth_mult: float = 1.0, stages: int = 5,
                 in_channels: int = 3,
                 quant: Optional[QuantConfig] = None) -> None:
        super().__init__()
        quant = quant or QuantConfig()
        if not 1 <= stages <= len(_B0_STAGES):
            raise ValueError(
                f"stages must be within 1..{len(_B0_STAGES)}"
            )

        def width(c: int) -> int:
            return max(4, int(round(c * width_mult)))

        def depth(n: int) -> int:
            return max(1, int(round(n * depth_mult)))

        stem_width = width(32)
        self.stem = Conv2d(in_channels, stem_width, 3, stride=1, pad=1,
                           bias=False, quant=quant)
        self.stem_bn = BatchNorm2d(stem_width)
        self.stem_act = QuantReLU(quant, six=True)

        self.blocks: List[MBConvBlock] = []
        channels = stem_width
        for expand, c_out, n_blocks, stride, kernel in _B0_STAGES[:stages]:
            c_out = width(c_out)
            for index in range(depth(n_blocks)):
                block_stride = stride if index == 0 else 1
                self.blocks.append(
                    MBConvBlock(channels, c_out, expand,
                                stride=block_stride, kernel=kernel,
                                quant=quant)
                )
                channels = c_out

        head_width = width(1280 // 4)
        self.head = Conv2d(channels, head_width, 1, bias=False,
                           quant=quant)
        self.head_bn = BatchNorm2d(head_width)
        self.head_act = QuantReLU(quant, six=True)
        self.pool = GlobalAvgPool2d()
        self.classifier = Linear(head_width, num_classes, quant=quant)

    def forward(self, x: Tensor) -> Tensor:
        x = self.stem_act(self.stem_bn(self.stem(x)))
        for block in self.blocks:
            x = block(x)
        x = self.head_act(self.head_bn(self.head(x)))
        x = self.pool(x)
        return self.classifier(x)
