"""LeNet-5 for 32x32 colour images (paper: LeNet-5 on CIFAR-10)."""

from __future__ import annotations

from typing import Optional

from repro.nn.layers import (
    Conv2d,
    Flatten,
    Linear,
    MaxPool2d,
    Module,
    QuantReLU,
)
from repro.nn.quant import QuantConfig
from repro.nn.autograd import Tensor


class LeNet5(Module):
    """The classic two-conv / three-dense LeNet-5.

    Args:
        num_classes: Output classes.
        in_channels: Input channels (3 for CIFAR-10-like data).
        width_mult: Uniform channel/feature scaling for reduced-scale
            runs (1.0 reproduces the classic 6/16/120/84 sizes).
        quant: Quantization configuration (8-bit QAT by default).
    """

    def __init__(self, num_classes: int = 10, in_channels: int = 3,
                 width_mult: float = 1.0,
                 quant: Optional[QuantConfig] = None) -> None:
        super().__init__()
        quant = quant or QuantConfig()

        def scaled(n: int) -> int:
            return max(1, int(round(n * width_mult)))

        c1, c2 = scaled(6), scaled(16)
        f1, f2 = scaled(120), scaled(84)
        self.conv1 = Conv2d(in_channels, c1, 5, pad=2, quant=quant)
        self.act1 = QuantReLU(quant)
        self.pool1 = MaxPool2d(2)
        self.conv2 = Conv2d(c1, c2, 5, quant=quant)
        self.act2 = QuantReLU(quant)
        self.pool2 = MaxPool2d(2)
        self.flatten = Flatten()
        self.fc1 = Linear(c2 * 6 * 6, f1, quant=quant)
        self.act3 = QuantReLU(quant)
        self.fc2 = Linear(f1, f2, quant=quant)
        self.act4 = QuantReLU(quant)
        self.fc3 = Linear(f2, num_classes, quant=quant)

    def forward(self, x: Tensor) -> Tensor:
        x = self.pool1(self.act1(self.conv1(x)))
        x = self.pool2(self.act2(self.conv2(x)))
        x = self.flatten(x)
        x = self.act3(self.fc1(x))
        x = self.act4(self.fc2(x))
        return self.fc3(x)
