"""The four network architectures of the paper's evaluation.

LeNet-5, ResNet-20, ResNet-50 and EfficientNet-B0-Lite, each built on the
quantization-aware layers of :mod:`repro.nn` and scalable in width/depth
so experiments can run at CI scale on a CPU while keeping the paper-scale
configuration available.
"""

from repro.models.lenet import LeNet5
from repro.models.resnet import ResNet, resnet20, resnet50
from repro.models.efficientnet import EfficientNetB0Lite
from repro.models.registry import MODEL_BUILDERS, build_model

__all__ = [
    "LeNet5",
    "ResNet",
    "resnet20",
    "resnet50",
    "EfficientNetB0Lite",
    "MODEL_BUILDERS",
    "build_model",
]
