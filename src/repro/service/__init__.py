"""Long-running experiment service: durable sweep jobs over HTTP.

The job layer (:mod:`repro.service.jobs` over the SQLite journal in
:mod:`repro.service.store`) is dependency-free and fully usable
in-process — it survives ``kill -9`` and lets a fleet of
``repro serve --worker`` processes drain one queue under heartbeat
leases.  The HTTP layer (:mod:`repro.service.app`) needs the optional
``service`` extra (fastapi + uvicorn) and is imported lazily so
``import repro.service`` never pulls it in.
"""

from repro.service.jobs import (
    ExperimentJob,
    JobManager,
    JobState,
    records_to_csv,
)
from repro.service.store import JobStore

__all__ = ["ExperimentJob", "JobManager", "JobState", "JobStore",
           "records_to_csv", "create_app", "fastapi_available"]


def create_app(*args, **kwargs):
    """Lazy proxy for :func:`repro.service.app.create_app`."""
    from repro.service.app import create_app as _create_app

    return _create_app(*args, **kwargs)


def fastapi_available() -> bool:
    """Whether the optional ``service`` extra is importable."""
    from repro.service.app import fastapi_available as _available

    return _available()
