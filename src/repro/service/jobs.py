"""In-process job queue and worker behind the experiment service.

This module is the fastapi-free core of ``repro.service``: a
:class:`JobManager` accepts sweep specs (the same mappings
:func:`~repro.experiments.sweep.load_sweep_file` parses), queues them,
and a background worker thread runs each job's grid points over the
:func:`~repro.experiments.parallel.parallel_map_outcomes` process pool
— sharing one warm artifact cache across every job the service ever
runs, so a re-submitted sweep is served instantly.

Failure paths are first-class:

* a grid point whose worker is killed outright (pool breakage) is
  retried with exponential backoff, up to ``max_retries`` times;
* a point that keeps failing marks the job ``partial`` — the surviving
  rows are kept and served, never discarded with the grid;
* a per-job wall-clock ``timeout_s`` bounds runaway grids the same
  way (unfinished points fail, finished rows survive);
* every job carries structured counters (done / cached / failed /
  retries / precached) that the status endpoint streams while the
  grid runs.

The optional ``poison`` knob fails any point whose ``describe()``
contains the given substring — a chaos hook the service smoke tests
use to exercise the ``partial`` path end-to-end over HTTP.
"""

from __future__ import annotations

import csv
import io
import queue
import tempfile
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.core.artifacts import ArtifactStore
from repro.experiments.parallel import (
    TaskFailure,
    parallel_map_outcomes,
)
from repro.experiments.sweep import (
    PointTask,
    SweepPoint,
    SweepResult,
    SweepRow,
    SweepSpec,
    _run_point,
    _scheduled_order,
    expand,
    point_cache_key,
    point_config,
    sweep_spec_from_mapping,
)

__all__ = ["JobManager", "ExperimentJob", "JobState",
           "records_to_csv", "JOB_ONLY_KEYS"]


class JobState:
    """String states of a job's lifecycle (JSON-friendly)."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"          # every grid point produced a row
    PARTIAL = "partial"    # some points failed; surviving rows kept
    FAILED = "failed"      # no point produced a row

    TERMINAL = (DONE, PARTIAL, FAILED)


#: Submission keys consumed by the job layer (everything else must be
#: a sweep-spec key and is validated by ``sweep_spec_from_mapping``).
JOB_ONLY_KEYS = ("jobs", "char_jobs", "timeout_s", "max_retries",
                 "poison")


@dataclass(frozen=True)
class _ServiceTask:
    """One grid point plus the job's chaos knob, picklable."""

    task: PointTask
    poison: Optional[str] = None

    def describe(self) -> str:
        return self.task.describe()


def _run_service_point(service_task: _ServiceTask) -> SweepRow:
    """Worker entry point: poison check, then the normal sweep point.

    The poison check fires *before* the cache lookup so a poisoned
    re-submission still exercises the failure path — that is the whole
    point of the knob.
    """
    description = service_task.task.describe()
    if service_task.poison and service_task.poison in description:
        raise RuntimeError(
            f"poisoned point (chaos knob matched "
            f"{service_task.poison!r}): {description}")
    return _run_point(service_task.task)


@dataclass
class ExperimentJob:
    """One submitted sweep and everything known about its progress."""

    job_id: str
    spec: SweepSpec
    points: List[SweepPoint]
    jobs: int
    char_jobs: int
    max_retries: int
    timeout_s: Optional[float]
    poison: Optional[str] = None

    state: str = JobState.QUEUED
    created_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: Expansion-order slots; ``None`` until the point finishes.
    rows: List[Optional[SweepRow]] = field(default_factory=list)
    #: Grid index -> structured failure record (terminal failures only).
    failures: Dict[int, Dict[str, Any]] = field(default_factory=dict)
    cached: int = 0
    retries: int = 0
    precached: int = 0
    #: Job-level crash (not a per-point failure), e.g. a config bug.
    error: Optional[str] = None
    finished: threading.Event = field(default_factory=threading.Event,
                                      repr=False)

    @property
    def n_done(self) -> int:
        return sum(1 for row in self.rows if row is not None)

    def status(self) -> Dict[str, Any]:
        """JSON-able snapshot (the ``GET /sweeps/{id}`` payload)."""
        total = len(self.points)
        done = self.n_done
        failed = len(self.failures)
        snapshot: Dict[str, Any] = {
            "job_id": self.job_id,
            "state": self.state,
            "experiment": self.spec.experiment,
            "scale": self.spec.scale,
            "grid": self.spec.describe(),
            "points": {
                "total": total,
                "done": done,
                "cached": self.cached,
                "failed": failed,
                "remaining": total - done - failed,
                "precached": self.precached,
            },
            "counters": {
                "retries": self.retries,
                "max_retries": self.max_retries,
            },
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }
        if self.started_at is not None:
            end = self.finished_at if self.finished_at is not None \
                else time.time()
            snapshot["duration_s"] = round(end - self.started_at, 3)
        if self.timeout_s is not None:
            snapshot["timeout_s"] = self.timeout_s
        if self.failures:
            snapshot["failures"] = [self.failures[index]
                                    for index in sorted(self.failures)]
        if self.error is not None:
            snapshot["error"] = self.error
        return snapshot

    def sweep_result(self) -> SweepResult:
        """The surviving rows as a normal :class:`SweepResult`."""
        return SweepResult(sweep=self.spec,
                           rows=[row for row in self.rows
                                 if row is not None])


def records_to_csv(records: Sequence[Mapping[str, Any]]) -> str:
    """Tidy/aggregated records as CSV text (union of all columns)."""
    columns: List[str] = []
    for record in records:
        for name in record:
            if name not in columns:
                columns.append(name)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=columns, restval="")
    writer.writeheader()
    writer.writerows(records)
    return buffer.getvalue()


class JobManager:
    """Queue + worker thread turning sweep specs into finished grids.

    Args:
        cache_dir: Artifact-store location every job (and each job's
            pool workers) shares — a directory path or a registered
            ``scheme://...`` URL (see
            :func:`repro.core.artifacts.register_storage_scheme`).
            ``None`` creates a service-lifetime temporary directory,
            so even then jobs share one warm cache.
        jobs: Default process count per job's grid (``1`` = inline in
            the worker thread; ``0`` = all cores).
        char_jobs: Default per-point characterization sharding.
        max_retries: Default bounded retries for points lost to pool
            breakage (a killed worker), with exponential backoff.
        retry_backoff_s: First backoff delay; doubles per retry wave.
        timeout_s: Default per-job wall-clock budget (``None`` = no
            limit); unfinished points fail, finished rows survive.
    """

    def __init__(self, cache_dir: Optional[str] = None, jobs: int = 1,
                 char_jobs: int = 1, max_retries: int = 2,
                 retry_backoff_s: float = 0.5,
                 timeout_s: Optional[float] = None) -> None:
        self._tempdir: Optional[tempfile.TemporaryDirectory] = None
        if cache_dir is None:
            self._tempdir = tempfile.TemporaryDirectory(
                prefix="repro-service-cache-")
            cache_dir = self._tempdir.name
        self.cache_dir = str(cache_dir)
        self.default_jobs = jobs
        self.default_char_jobs = char_jobs
        self.default_max_retries = max_retries
        self.retry_backoff_s = retry_backoff_s
        self.default_timeout_s = timeout_s
        self.started_at = time.time()

        # Reclaim tmp litter a previously killed service left behind.
        self.stale_tmp_swept = ArtifactStore(
            self.cache_dir).sweep_stale_tmp()

        self._lock = threading.Lock()
        self._jobs: Dict[str, ExperimentJob] = {}
        self._order: List[str] = []
        self._queue: "queue.Queue[Optional[str]]" = queue.Queue()
        self._stats = {
            "jobs_submitted": 0, "jobs_done": 0, "jobs_partial": 0,
            "jobs_failed": 0, "points_done": 0, "points_cached": 0,
            "points_failed": 0, "point_retries": 0,
        }
        self._closed = False
        self._worker = threading.Thread(target=self._worker_loop,
                                        name="repro-service-worker",
                                        daemon=True)
        self._worker.start()

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit_mapping(self, data: Mapping[str, Any]) -> Dict[str, Any]:
        """Submit a job from a request body / spec-file mapping.

        Job-level knobs (:data:`JOB_ONLY_KEYS`) are split off; the
        rest must be a valid sweep spec — unknown keys raise
        ``ValueError`` exactly like :func:`load_sweep_file`.
        """
        if not isinstance(data, Mapping):
            raise ValueError("request body must be a JSON/TOML object")
        knobs = {key: data[key] for key in JOB_ONLY_KEYS if key in data}
        spec_keys = {key: value for key, value in data.items()
                     if key not in knobs}
        spec = sweep_spec_from_mapping(spec_keys,
                                       source="submitted sweep spec")
        if knobs.get("timeout_s") is not None:
            knobs["timeout_s"] = float(knobs["timeout_s"])
            if knobs["timeout_s"] <= 0:
                raise ValueError("timeout_s must be positive")
        for key in ("jobs", "char_jobs", "max_retries"):
            if key in knobs:
                knobs[key] = int(knobs[key])
        if knobs.get("max_retries", 0) < 0:
            raise ValueError("max_retries must be >= 0")
        poison = knobs.get("poison")
        if poison is not None and not isinstance(poison, str):
            raise ValueError("poison must be a string (substring of a "
                             "point description)")
        return self.submit_spec(spec, **knobs)

    def submit_spec(self, spec: SweepSpec,
                    jobs: Optional[int] = None,
                    char_jobs: Optional[int] = None,
                    max_retries: Optional[int] = None,
                    timeout_s: Optional[float] = None,
                    poison: Optional[str] = None) -> Dict[str, Any]:
        """Queue a normalized sweep; returns the initial status."""
        if self._closed:
            raise RuntimeError("job manager is shut down")
        points = expand(spec)
        job = ExperimentJob(
            job_id=uuid.uuid4().hex[:12],
            spec=spec,
            points=points,
            jobs=self.default_jobs if jobs is None else jobs,
            char_jobs=(self.default_char_jobs if char_jobs is None
                       else char_jobs),
            max_retries=(self.default_max_retries if max_retries is None
                         else max_retries),
            timeout_s=(self.default_timeout_s if timeout_s is None
                       else timeout_s),
            poison=poison,
        )
        job.rows = [None] * len(points)
        with self._lock:
            self._jobs[job.job_id] = job
            self._order.append(job.job_id)
            self._stats["jobs_submitted"] += 1
        self._queue.put(job.job_id)
        return job.status()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def get(self, job_id: str) -> Optional[ExperimentJob]:
        with self._lock:
            return self._jobs.get(job_id)

    def status(self, job_id: str) -> Optional[Dict[str, Any]]:
        job = self.get(job_id)
        if job is None:
            return None
        with self._lock:
            return job.status()

    def list_jobs(self) -> List[Dict[str, Any]]:
        """Newest-first summaries of every job the service has seen."""
        with self._lock:
            return [self._jobs[job_id].status()
                    for job_id in reversed(self._order)]

    def result(self, job_id: str,
               aggregated: bool = False) -> Optional[Dict[str, Any]]:
        """Tidy rows of a *terminal* job (plus seed aggregates).

        ``None`` for an unknown id; a job still queued/running returns
        a dict whose only keys are ``state`` and ``job_id`` — the HTTP
        layer maps that to 409.
        """
        job = self.get(job_id)
        if job is None:
            return None
        with self._lock:
            if job.state not in JobState.TERMINAL:
                return {"job_id": job.job_id, "state": job.state}
            result = job.sweep_result()
            payload: Dict[str, Any] = {
                "job_id": job.job_id,
                "state": job.state,
                "n_rows": len(result.rows),
                "n_failed": len(job.failures),
                "rows": result.tidy(),
            }
            if aggregated:
                payload["aggregated"] = result.tidy_aggregated()
            if job.failures:
                payload["failures"] = [job.failures[index]
                                       for index in sorted(job.failures)]
            return payload

    def wait(self, job_id: str,
             timeout: Optional[float] = None) -> bool:
        """Block until ``job_id`` reaches a terminal state."""
        job = self.get(job_id)
        if job is None:
            raise KeyError(job_id)
        return job.finished.wait(timeout)

    def stats(self) -> Dict[str, Any]:
        """Service-level counters for ``GET /healthz``."""
        with self._lock:
            by_state: Dict[str, int] = {}
            for job in self._jobs.values():
                by_state[job.state] = by_state.get(job.state, 0) + 1
            return {
                "uptime_s": round(time.time() - self.started_at, 3),
                "cache_dir": self.cache_dir,
                "stale_tmp_swept": self.stale_tmp_swept,
                "jobs": dict(by_state),
                "counters": dict(self._stats),
            }

    # ------------------------------------------------------------------
    # the worker
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            job_id = self._queue.get()
            if job_id is None:
                return
            job = self.get(job_id)
            if job is None:  # pragma: no cover - defensive
                continue
            try:
                self._run_job(job)
            except Exception as error:
                # A job-level crash must never kill the worker thread;
                # the job reports it and the queue moves on.
                with self._lock:
                    job.error = f"{type(error).__name__}: {error}"
                    self._finalize(job)

    def _record_row(self, job: ExperimentJob, index: int,
                    row: SweepRow) -> None:
        with self._lock:
            if job.rows[index] is not None:
                return
            job.rows[index] = row
            job.failures.pop(index, None)
            self._stats["points_done"] += 1
            if row.cached:
                job.cached += 1
                self._stats["points_cached"] += 1

    def _record_failure(self, job: ExperimentJob, index: int,
                        failure: TaskFailure, attempts: int) -> None:
        with self._lock:
            if job.rows[index] is not None:
                return
            job.failures[index] = {
                "point": job.points[index].describe(),
                "kind": failure.kind,
                "attempts": attempts,
                "error": (f"{type(failure.error).__name__}: "
                          f"{failure.error}"
                          if failure.error is not None
                          else failure.summary()),
            }
            self._stats["points_failed"] += 1

    def _run_job(self, job: ExperimentJob) -> None:
        with self._lock:
            job.state = JobState.RUNNING
            job.started_at = time.time()

        # How much of the grid the warm cache can already serve — the
        # number that makes "re-submission is instant" observable.
        probe = ArtifactStore(self.cache_dir)
        precached = sum(
            1 for point in job.points
            if point_cache_key(point,
                               point_config(point, job.char_jobs))
            in probe)
        with self._lock:
            job.precached = precached

        deadline = (None if job.timeout_s is None
                    else time.monotonic() + job.timeout_s)
        pending = list(_scheduled_order(job.points))
        attempt = 0
        while pending:
            wave = list(pending)
            tasks = [
                _ServiceTask(
                    PointTask(job.points[index], self.cache_dir,
                              job.char_jobs, False),
                    poison=job.poison)
                for index in wave
            ]
            timeout = (None if deadline is None
                       else max(0.0, deadline - time.monotonic()))
            outcomes = parallel_map_outcomes(
                _run_service_point, tasks, jobs=job.jobs,
                on_result=lambda slot, row, wave=wave:
                    self._record_row(job, wave[slot], row),
                timeout=timeout)
            retriable: List[int] = []
            for slot, outcome in enumerate(outcomes):
                index = wave[slot]
                if outcome.ok:
                    self._record_row(job, index, outcome.value)
                    continue
                failure = outcome.failure
                out_of_time = (deadline is not None
                               and time.monotonic() >= deadline)
                if failure.retriable and attempt < job.max_retries \
                        and not out_of_time:
                    retriable.append(index)
                else:
                    self._record_failure(job, index, failure,
                                         attempts=attempt + 1)
            if not retriable:
                break
            attempt += 1
            with self._lock:
                job.retries += len(retriable)
                self._stats["point_retries"] += len(retriable)
            delay = self.retry_backoff_s * (2 ** (attempt - 1))
            if delay > 0:
                time.sleep(min(delay, 30.0))
            pending = retriable

        with self._lock:
            self._finalize(job)

    def _finalize(self, job: ExperimentJob) -> None:
        """Terminal-state bookkeeping; caller holds the lock."""
        if job.error is not None or job.n_done == 0:
            job.state = JobState.FAILED
            self._stats["jobs_failed"] += 1
        elif job.failures:
            job.state = JobState.PARTIAL
            self._stats["jobs_partial"] += 1
        else:
            job.state = JobState.DONE
            self._stats["jobs_done"] += 1
        job.finished_at = time.time()
        job.finished.set()

    def shutdown(self, wait: bool = True,
                 timeout: Optional[float] = 30.0) -> None:
        """Stop the worker (after the current job) and clean up."""
        if self._closed:
            return
        self._closed = True
        self._queue.put(None)
        if wait:
            self._worker.join(timeout)
        if self._tempdir is not None:
            self._tempdir.cleanup()
            self._tempdir = None
