"""Durable job queue and lease-draining worker behind the service.

This module is the fastapi-free core of ``repro.service``: a
:class:`JobManager` accepts sweep specs (the same mappings
:func:`~repro.experiments.sweep.load_sweep_file` parses), journals
them into a :class:`~repro.service.store.JobStore` (SQLite, living
beside the artifact cache), and a background drain thread claims jobs
through the store's lease table and runs each grid over the
:func:`~repro.experiments.parallel.parallel_map_outcomes` process pool
— sharing one warm artifact cache across every job the service ever
runs, so a re-submitted sweep is served instantly.

Durability and fleet semantics are first-class:

* every submission, per-point completion/failure and state transition
  is journaled *before* it is acknowledged, so a service killed with
  ``kill -9`` loses nothing committed: on restart, terminal jobs are
  served as before and interrupted jobs are re-queued and resume from
  the journal (recorded rows replayed, remaining points recomputed
  through the warm cache);
* jobs are claimed through a lease (worker id + heartbeat deadline):
  any number of ``repro serve --worker`` processes pointed at the same
  store drain one queue without double-running a point, and a worker
  that dies simply stops heartbeating — its expired lease makes the
  job reclaimable, exactly like pool breakage makes a point retriable;
* a grid point whose worker is killed outright (pool breakage) is
  retried with exponential backoff *plus seeded full jitter* (so
  multi-worker retry waves do not thunder in lockstep), up to
  ``max_retries`` times;
* a point that keeps failing marks the job ``partial`` — the surviving
  rows are kept and served, never discarded with the grid;
* ``GET /healthz`` degradation is scoped to a sliding window of recent
  finished jobs, not the service's whole lifetime.

Chaos knobs (all journaled, all off by default) make the recovery
paths deterministic to exercise: ``poison`` fails matching points
before the cache, ``crash_after_points`` SIGKILLs the serving process
the moment the N-th row of the job is journaled, and ``lease_drop``
deliberately abandons the lease mid-job so another worker (or the same
one, a heartbeat later) must reclaim and resume it.
"""

from __future__ import annotations

import csv
import io
import os
import pickle
import queue
import random
import signal
import socket
import tempfile
import threading
import time
import uuid
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Deque, Dict, List, Mapping, Optional, \
    Sequence, Tuple

from repro.core.artifacts import ArtifactStore
from repro.experiments.parallel import (
    TaskFailure,
    parallel_map_outcomes,
    retry_backoff_delay,
)
from repro.experiments.sweep import (
    PointTask,
    SweepPoint,
    SweepResult,
    SweepRow,
    SweepSpec,
    _run_point,
    _scheduled_order,
    expand,
    point_cache_key,
    point_config,
    sweep_spec_from_mapping,
)
from repro.service.store import JobStore

__all__ = ["JobManager", "ExperimentJob", "JobState",
           "records_to_csv", "JOB_ONLY_KEYS"]


class JobState:
    """String states of a job's lifecycle (JSON-friendly)."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"          # every grid point produced a row
    PARTIAL = "partial"    # some points failed; surviving rows kept
    FAILED = "failed"      # no point produced a row

    TERMINAL = (DONE, PARTIAL, FAILED)


#: Submission keys consumed by the job layer (everything else must be
#: a sweep-spec key and is validated by ``sweep_spec_from_mapping``).
#: ``poison``, ``crash_after_points`` and ``lease_drop`` are the chaos
#: knobs — deterministic fault injection for tests and smoke drills.
JOB_ONLY_KEYS = ("jobs", "char_jobs", "timeout_s", "max_retries",
                 "poison", "crash_after_points", "lease_drop")


class _LeaseAbandoned(Exception):
    """The drain thread must stop running this job *without*
    finalizing it: the lease was lost to (or deliberately dropped for)
    another claim, and whoever claims next resumes from the journal."""


@dataclass(frozen=True)
class _ServiceTask:
    """One grid point plus the job's chaos knob, picklable."""

    task: PointTask
    poison: Optional[str] = None

    def describe(self) -> str:
        return self.task.describe()


def _run_service_point(service_task: _ServiceTask) -> SweepRow:
    """Worker entry point: poison check, then the normal sweep point.

    The poison check fires *before* the cache lookup so a poisoned
    re-submission still exercises the failure path — that is the whole
    point of the knob.
    """
    description = service_task.task.describe()
    if service_task.poison and service_task.poison in description:
        raise RuntimeError(
            f"poisoned point (chaos knob matched "
            f"{service_task.poison!r}): {description}")
    return _run_point(service_task.task)


@dataclass
class ExperimentJob:
    """One submitted sweep and everything known about its progress."""

    job_id: str
    spec: SweepSpec
    points: List[SweepPoint]
    jobs: int
    char_jobs: int
    max_retries: int
    timeout_s: Optional[float]
    poison: Optional[str] = None
    #: Chaos: SIGKILL the serving process the moment the job's N-th
    #: row is journaled (crash-recovery drills; survives restarts but
    #: fires only when the journaled total *equals* N, so the resumed
    #: run sails past it).
    crash_after_points: Optional[int] = None
    #: Chaos: deliberately abandon the lease (journaled, at most this
    #: many times) once the job has at least one row — the job must be
    #: reclaimed and resumed from the journal.
    lease_drop: int = 0

    state: str = JobState.QUEUED
    created_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: Worker id currently (or last) responsible for the job.
    worker: Optional[str] = None
    #: Expansion-order slots; ``None`` until the point finishes.
    rows: List[Optional[SweepRow]] = field(default_factory=list)
    #: Grid index -> structured failure record (terminal failures only).
    failures: Dict[int, Dict[str, Any]] = field(default_factory=dict)
    cached: int = 0
    retries: int = 0
    precached: int = 0
    #: Job-level crash (not a per-point failure), e.g. a config bug.
    error: Optional[str] = None
    finished: threading.Event = field(default_factory=threading.Event,
                                      repr=False)

    @property
    def n_done(self) -> int:
        return sum(1 for row in self.rows if row is not None)

    def knobs(self) -> Dict[str, Any]:
        """The job-level knobs, JSON-able (journaled with the job)."""
        return {
            "jobs": self.jobs,
            "char_jobs": self.char_jobs,
            "max_retries": self.max_retries,
            "timeout_s": self.timeout_s,
            "poison": self.poison,
            "crash_after_points": self.crash_after_points,
            "lease_drop": self.lease_drop,
        }

    def status(self) -> Dict[str, Any]:
        """JSON-able snapshot (the ``GET /sweeps/{id}`` payload)."""
        total = len(self.points)
        done = self.n_done
        failed = len(self.failures)
        snapshot: Dict[str, Any] = {
            "job_id": self.job_id,
            "state": self.state,
            "experiment": self.spec.experiment,
            "scale": self.spec.scale,
            "grid": self.spec.describe(),
            "points": {
                "total": total,
                "done": done,
                "cached": self.cached,
                "failed": failed,
                "remaining": total - done - failed,
                "precached": self.precached,
            },
            "counters": {
                "retries": self.retries,
                "max_retries": self.max_retries,
            },
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }
        if self.worker is not None:
            snapshot["worker"] = self.worker
        if self.started_at is not None:
            end = self.finished_at if self.finished_at is not None \
                else time.time()
            snapshot["duration_s"] = round(end - self.started_at, 3)
        if self.timeout_s is not None:
            snapshot["timeout_s"] = self.timeout_s
        if self.failures:
            snapshot["failures"] = [self.failures[index]
                                    for index in sorted(self.failures)]
        if self.error is not None:
            snapshot["error"] = self.error
        return snapshot

    def sweep_result(self) -> SweepResult:
        """The surviving rows as a normal :class:`SweepResult`."""
        return SweepResult(sweep=self.spec,
                           rows=[row for row in self.rows
                                 if row is not None])


def records_to_csv(records: Sequence[Mapping[str, Any]]) -> str:
    """Tidy/aggregated records as CSV text (union of all columns)."""
    columns: List[str] = []
    for record in records:
        for name in record:
            if name not in columns:
                columns.append(name)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=columns, restval="")
    writer.writeheader()
    writer.writerows(records)
    return buffer.getvalue()


def _default_worker_id() -> str:
    return (f"{socket.gethostname()}-{os.getpid()}-"
            f"{uuid.uuid4().hex[:6]}")


class JobManager:
    """Durable queue + lease-draining worker for sweep jobs.

    Args:
        cache_dir: Artifact-store location every job (and each job's
            pool workers) shares — a directory path or a registered
            ``scheme://...`` URL (see
            :func:`repro.core.artifacts.register_storage_scheme`,
            including ``chaos://dir?read=0.05`` fault injection).
            ``None`` creates a service-lifetime temporary directory,
            so even then jobs share one warm cache.
        jobs: Default process count per job's grid (``1`` = inline in
            the drain thread; ``0`` = all cores).
        char_jobs: Default per-point characterization sharding.
        max_retries: Default bounded retries for points lost to pool
            breakage (a killed worker), with jittered backoff.
        retry_backoff_s: Backoff scale; the actual delay of wave ``n``
            is drawn uniformly from ``[0, retry_backoff_s * 2**(n-1)]``
            (full jitter, 30 s cap) so retry waves from a worker fleet
            decorrelate instead of thundering in lockstep.
        timeout_s: Default per-job wall-clock budget (``None`` = no
            limit); unfinished points fail, finished rows survive.
        store_path: The SQLite job journal.  Defaults to
            ``service-jobs.sqlite3`` beside the artifact cache (or in
            a manager-lifetime temp dir when the cache has no local
            root).  Point several managers — API nodes and
            ``repro serve --worker`` drainers — at the same path and
            they share one durable queue.
        worker_id: This manager's lease identity (defaults to
            ``host-pid-rand``; must be unique per process).
        lease_s: Lease heartbeat deadline.  A claimed job's lease is
            renewed every ``lease_s / 4``; a worker silent for longer
            than ``lease_s`` forfeits the job to the next claimant.
        poll_interval_s: How often the drain thread checks the store
            for claimable jobs submitted elsewhere (local submissions
            wake it immediately).
        retry_jitter_seed: Seed for the backoff jitter RNG (chaos and
            tests pin it; ``None`` = nondeterministic).
        health_window_jobs / health_window_s: The sliding window
            :meth:`health` scopes degradation to — only ``failed``
            jobs among the last ``health_window_jobs`` finished within
            ``health_window_s`` seconds degrade the service; lifetime
            counts stay in :meth:`stats`.
    """

    def __init__(self, cache_dir: Optional[str] = None, jobs: int = 1,
                 char_jobs: int = 1, max_retries: int = 2,
                 retry_backoff_s: float = 0.5,
                 timeout_s: Optional[float] = None,
                 store_path: Optional[str] = None,
                 worker_id: Optional[str] = None,
                 lease_s: float = 30.0,
                 poll_interval_s: float = 1.0,
                 retry_jitter_seed: Optional[int] = None,
                 health_window_jobs: int = 20,
                 health_window_s: float = 600.0) -> None:
        self._tempdir: Optional[tempfile.TemporaryDirectory] = None
        if cache_dir is None:
            self._tempdir = tempfile.TemporaryDirectory(
                prefix="repro-service-cache-")
            cache_dir = self._tempdir.name
        self.cache_dir = str(cache_dir)
        self.default_jobs = jobs
        self.default_char_jobs = char_jobs
        self.default_max_retries = max_retries
        self.retry_backoff_s = retry_backoff_s
        self.default_timeout_s = timeout_s
        self.worker_id = (worker_id if worker_id is not None
                          else _default_worker_id())
        self.lease_s = float(lease_s)
        self.poll_interval_s = float(poll_interval_s)
        self.health_window_jobs = int(health_window_jobs)
        self.health_window_s = float(health_window_s)
        self.started_at = time.time()
        self._retry_rng = random.Random(retry_jitter_seed)

        # Reclaim tmp litter a previously killed service left behind.
        probe = ArtifactStore(self.cache_dir)
        self.stale_tmp_swept = probe.sweep_stale_tmp()

        # The durable journal lives beside the artifact cache so the
        # two move (and get backed up / mounted) together; caches
        # without a local root (object stores) fall back to a
        # manager-lifetime temp dir unless a path is given explicitly.
        if store_path is None:
            root = probe.cache_dir
            if root is not None:
                store_path = str(Path(root) / "service-jobs.sqlite3")
            else:
                if self._tempdir is None:
                    self._tempdir = tempfile.TemporaryDirectory(
                        prefix="repro-service-store-")
                store_path = str(Path(self._tempdir.name)
                                 / "service-jobs.sqlite3")
        self.store = JobStore(store_path)

        self._lock = threading.Lock()
        self._jobs: Dict[str, ExperimentJob] = {}
        self._order: List[str] = []
        self._queue: "queue.Queue[Optional[str]]" = queue.Queue()
        #: Job id this manager's drain thread is currently running.
        self._active: Optional[str] = None
        #: Leases the heartbeat failed to renew (stolen after expiry).
        self._lost_leases: set = set()
        self._recent_outcomes: Deque[Tuple[float, str]] = deque(
            maxlen=max(1, self.health_window_jobs))
        self._stats = self.store.lifetime_counters()
        self._closed = False
        self._stop = threading.Event()

        # Crash recovery: rebuild every journaled job.  Terminal jobs
        # are served exactly as before the restart; interrupted ones
        # stay claimable (their dead owner's lease expires) and resume
        # from the journal.
        self.resumed_jobs: List[str] = []
        for record in self.store.load_jobs():
            job = self._rebuild_job(record)
            self._jobs[job.job_id] = job
            self._order.append(job.job_id)
            if job.state not in JobState.TERMINAL:
                self.resumed_jobs.append(job.job_id)
        self.recovered_jobs = len(self._jobs)

        self._worker = threading.Thread(target=self._worker_loop,
                                        name="repro-service-worker",
                                        daemon=True)
        self._worker.start()
        self._heartbeat = threading.Thread(
            target=self._heartbeat_loop,
            name="repro-service-heartbeat", daemon=True)
        self._heartbeat.start()
        for job_id in self.resumed_jobs:
            self._queue.put(job_id)  # wake the drain thread promptly

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit_mapping(self, data: Mapping[str, Any]) -> Dict[str, Any]:
        """Submit a job from a request body / spec-file mapping.

        Job-level knobs (:data:`JOB_ONLY_KEYS`) are split off; the
        rest must be a valid sweep spec — unknown keys raise
        ``ValueError`` exactly like :func:`load_sweep_file`.
        """
        if not isinstance(data, Mapping):
            raise ValueError("request body must be a JSON/TOML object")
        knobs = {key: data[key] for key in JOB_ONLY_KEYS if key in data}
        spec_keys = {key: value for key, value in data.items()
                     if key not in knobs}
        spec = sweep_spec_from_mapping(spec_keys,
                                       source="submitted sweep spec")
        if knobs.get("timeout_s") is not None:
            knobs["timeout_s"] = float(knobs["timeout_s"])
            if knobs["timeout_s"] <= 0:
                raise ValueError("timeout_s must be positive")
        for key in ("jobs", "char_jobs", "max_retries", "lease_drop"):
            if key in knobs:
                knobs[key] = int(knobs[key])
        if knobs.get("max_retries", 0) < 0:
            raise ValueError("max_retries must be >= 0")
        if knobs.get("lease_drop", 0) < 0:
            raise ValueError("lease_drop must be >= 0")
        if knobs.get("crash_after_points") is not None:
            knobs["crash_after_points"] = int(
                knobs["crash_after_points"])
            if knobs["crash_after_points"] < 1:
                raise ValueError("crash_after_points must be >= 1")
        poison = knobs.get("poison")
        if poison is not None and not isinstance(poison, str):
            raise ValueError("poison must be a string (substring of a "
                             "point description)")
        return self.submit_spec(spec, **knobs)

    def submit_spec(self, spec: SweepSpec,
                    jobs: Optional[int] = None,
                    char_jobs: Optional[int] = None,
                    max_retries: Optional[int] = None,
                    timeout_s: Optional[float] = None,
                    poison: Optional[str] = None,
                    crash_after_points: Optional[int] = None,
                    lease_drop: int = 0) -> Dict[str, Any]:
        """Journal + queue a normalized sweep; returns the status."""
        if self._closed:
            raise RuntimeError("job manager is shut down")
        points = expand(spec)
        job = ExperimentJob(
            job_id=uuid.uuid4().hex[:12],
            spec=spec,
            points=points,
            jobs=self.default_jobs if jobs is None else jobs,
            char_jobs=(self.default_char_jobs if char_jobs is None
                       else char_jobs),
            max_retries=(self.default_max_retries if max_retries is None
                         else max_retries),
            timeout_s=(self.default_timeout_s if timeout_s is None
                       else timeout_s),
            poison=poison,
            crash_after_points=crash_after_points,
            lease_drop=lease_drop,
        )
        job.rows = [None] * len(points)
        # Journal the submission *before* acknowledging it: a crash
        # between here and the queue loses nothing — recovery (or any
        # fleet worker polling the store) picks the job up.
        self.store.create_job(
            job.job_id, job.created_at,
            pickle.dumps((spec, tuple(points)),
                         protocol=pickle.HIGHEST_PROTOCOL),
            job.knobs())
        with self._lock:
            self._jobs[job.job_id] = job
            self._order.append(job.job_id)
            self._stats["jobs_submitted"] += 1
        self._queue.put(job.job_id)
        return job.status()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def get(self, job_id: str) -> Optional[ExperimentJob]:
        with self._lock:
            return self._jobs.get(job_id)

    def _find(self, job_id: str) -> Optional[ExperimentJob]:
        """Local job, or one adopted from the store (submitted by a
        sibling node sharing the journal)."""
        job = self.get(job_id)
        if job is not None:
            return job
        record = self.store.load_job(job_id)
        if record is None:
            return None
        adopted = self._rebuild_job(record)
        with self._lock:
            existing = self._jobs.get(job_id)
            if existing is not None:
                return existing
            self._jobs[job_id] = adopted
            self._order.append(job_id)
        return adopted

    def _sync_from_store(self, job: ExperimentJob) -> None:
        """Refresh a job some *other* worker is (or was) running.

        Reads first (store locks only), then merges under the manager
        lock; recorded rows are replayed into empty slots only, so a
        local runner and a refresh can never fight over a slot.
        """
        record = self.store.load_job(job.job_id)
        if record is None:  # pragma: no cover - defensive
            return
        rows = self.store.load_rows(job.job_id)
        failures = self.store.load_failures(job.job_id)
        with self._lock:
            if job.state in JobState.TERMINAL:
                return
            cached = 0
            for index, (blob, was_cached) in rows.items():
                if job.rows[index] is None:
                    job.rows[index] = pickle.loads(blob)
                cached += 1 if was_cached else 0
            for index, failure in failures.items():
                if job.rows[index] is None:
                    job.failures.setdefault(index, failure)
            job.cached = cached
            job.state = record["state"]
            job.worker = record["worker"] or job.worker
            job.started_at = record["started_at"] or job.started_at
            job.finished_at = record["finished_at"]
            job.error = record["error"]
            job.precached = max(job.precached, record["precached"])
            job.retries = max(job.retries, record["retries"])
            if job.state in JobState.TERMINAL:
                job.finished.set()

    def _maybe_sync(self, job: ExperimentJob) -> None:
        if job.state not in JobState.TERMINAL \
                and self._active != job.job_id:
            self._sync_from_store(job)

    def status(self, job_id: str) -> Optional[Dict[str, Any]]:
        job = self._find(job_id)
        if job is None:
            return None
        self._maybe_sync(job)
        with self._lock:
            return job.status()

    def list_jobs(self) -> List[Dict[str, Any]]:
        """Newest-first summaries of every job the service has seen."""
        with self._lock:
            jobs = [self._jobs[job_id]
                    for job_id in reversed(self._order)]
        for job in jobs:
            self._maybe_sync(job)
        with self._lock:
            return [job.status() for job in jobs]

    def result(self, job_id: str,
               aggregated: bool = False) -> Optional[Dict[str, Any]]:
        """Tidy rows of a *terminal* job (plus seed aggregates).

        ``None`` for an unknown id; a job still queued/running returns
        a dict whose only keys are ``state`` and ``job_id`` — the HTTP
        layer maps that to 409.

        The row snapshot is taken under the manager lock but the
        (potentially large) tidy/aggregate serialization runs
        *outside* it, so a client downloading a big terminal grid
        never blocks concurrent submits and status polls.
        """
        job = self._find(job_id)
        if job is None:
            return None
        self._maybe_sync(job)
        with self._lock:
            if job.state not in JobState.TERMINAL:
                return {"job_id": job.job_id, "state": job.state}
            state = job.state
            rows = [row for row in job.rows if row is not None]
            failures = [job.failures[index]
                        for index in sorted(job.failures)]
        result = SweepResult(sweep=job.spec, rows=rows)
        payload: Dict[str, Any] = {
            "job_id": job.job_id,
            "state": state,
            "n_rows": len(rows),
            "n_failed": len(failures),
            "rows": result.tidy(),
        }
        if aggregated:
            payload["aggregated"] = result.tidy_aggregated()
        if failures:
            payload["failures"] = failures
        return payload

    def wait(self, job_id: str,
             timeout: Optional[float] = None) -> Optional[bool]:
        """Block until ``job_id`` reaches a terminal state.

        Returns ``True`` once terminal, ``False`` on timeout and —
        matching :meth:`status` / :meth:`result` — ``None`` for an
        unknown id (it never raises).  Jobs run by a sibling worker
        are observed through the shared store.
        """
        job = self._find(job_id)
        if job is None:
            return None
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        while True:
            step = 0.1
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return job.finished.is_set()
                step = min(step, remaining)
            if job.finished.wait(step):
                return True
            self._maybe_sync(job)
            if job.finished.is_set():
                return True

    def stats(self) -> Dict[str, Any]:
        """Service-level counters for ``GET /healthz``."""
        with self._lock:
            by_state: Dict[str, int] = {}
            for job in self._jobs.values():
                by_state[job.state] = by_state.get(job.state, 0) + 1
            return {
                "uptime_s": round(time.time() - self.started_at, 3),
                "cache_dir": self.cache_dir,
                "stale_tmp_swept": self.stale_tmp_swept,
                "jobs": dict(by_state),
                "counters": dict(self._stats),
                "store": {
                    "path": str(self.store.path),
                    "worker_id": self.worker_id,
                    "lease_s": self.lease_s,
                    "recovered_jobs": self.recovered_jobs,
                    "resumed_jobs": len(self.resumed_jobs),
                },
            }

    def health(self) -> Dict[str, Any]:
        """Liveness verdict scoped to a sliding failure window.

        Only ``failed`` jobs among the last ``health_window_jobs``
        finished jobs *and* within ``health_window_s`` seconds count —
        one bad spec submitted last week must not mark the service
        degraded forever.  Lifetime totals stay in :meth:`stats`.
        """
        now = time.time()
        with self._lock:
            recent = [state for ts, state in self._recent_outcomes
                      if now - ts <= self.health_window_s]
        recent_failed = sum(1 for state in recent
                            if state == JobState.FAILED)
        return {
            "status": "degraded" if recent_failed else "ok",
            "window": {
                "jobs": self.health_window_jobs,
                "seconds": self.health_window_s,
                "recent_jobs": len(recent),
                "recent_failed": recent_failed,
            },
        }

    # ------------------------------------------------------------------
    # recovery plumbing
    # ------------------------------------------------------------------
    def _rebuild_job(self, record: Dict[str, Any]) -> ExperimentJob:
        """An :class:`ExperimentJob` replayed from its journal."""
        spec, points = pickle.loads(record["spec"])
        knobs = record["knobs"]
        job = ExperimentJob(
            job_id=record["job_id"],
            spec=spec,
            points=list(points),
            jobs=knobs.get("jobs", self.default_jobs),
            char_jobs=knobs.get("char_jobs", self.default_char_jobs),
            max_retries=knobs.get("max_retries",
                                  self.default_max_retries),
            timeout_s=knobs.get("timeout_s"),
            poison=knobs.get("poison"),
            crash_after_points=knobs.get("crash_after_points"),
            lease_drop=knobs.get("lease_drop", 0) or 0,
        )
        job.state = record["state"]
        job.created_at = record["created_at"]
        job.started_at = record["started_at"]
        job.finished_at = record["finished_at"]
        job.worker = record["worker"]
        job.error = record["error"]
        job.precached = record["precached"]
        job.retries = record["retries"]
        job.rows = [None] * len(job.points)
        cached = 0
        for index, (blob, was_cached) in \
                self.store.load_rows(job.job_id).items():
            job.rows[index] = pickle.loads(blob)
            cached += 1 if was_cached else 0
        job.cached = cached
        job.failures = self.store.load_failures(job.job_id)
        if job.state in JobState.TERMINAL:
            job.finished.set()
        return job

    # ------------------------------------------------------------------
    # the drain thread
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            try:
                token = self._queue.get(timeout=self.poll_interval_s)
                if token is None:
                    return
            except queue.Empty:
                pass
            if self._closed:
                return
            self._drain()

    def _drain(self) -> None:
        """Claim and run store jobs until nothing is claimable."""
        while not self._closed:
            try:
                claim = self.store.claim_next(self.worker_id,
                                              self.lease_s)
            except Exception:  # pragma: no cover - store closed/racy
                return
            if claim is None:
                return
            self._lost_leases.discard(claim.job_id)
            job = self._find(claim.job_id)
            if job is None or job.state in JobState.TERMINAL:
                # A sibling finished it between our SELECT and now.
                self.store.release_lease(claim.job_id, self.worker_id)
                continue
            self._active = claim.job_id
            try:
                self._run_job(job, resumed=claim.reclaimed)
            except _LeaseAbandoned:
                # Not ours anymore (stolen or deliberately dropped);
                # whoever claims next resumes from the journal.
                pass
            except Exception as error:
                # A job-level crash must never kill the drain thread;
                # the job reports it and the queue moves on.
                with self._lock:
                    job.error = f"{type(error).__name__}: {error}"
                    self._finalize(job)
            finally:
                self._active = None

    def _heartbeat_loop(self) -> None:
        interval = max(0.05, self.lease_s / 4.0)
        while not self._stop.wait(interval):
            active = self._active
            if active is None or self._closed:
                continue
            try:
                renewed = self.store.renew_lease(active, self.worker_id,
                                                 self.lease_s)
            except Exception:  # pragma: no cover - store closed/racy
                continue
            if not renewed:
                self._lost_leases.add(active)

    def _check_job_chaos(self, job: ExperimentJob) -> None:
        """Abandon the job if its lease is gone (stolen or dropped)."""
        if job.job_id in self._lost_leases:
            raise _LeaseAbandoned(f"lease on {job.job_id} lost")
        if job.lease_drop and job.n_done > 0:
            drops = self.store.count_events(job.job_id,
                                            "lease_dropped")
            if drops < job.lease_drop:
                self.store.drop_lease(job.job_id, self.worker_id)
                raise _LeaseAbandoned(
                    f"lease on {job.job_id} deliberately dropped "
                    f"(chaos knob, drop {drops + 1}/{job.lease_drop})")

    def _record_row(self, job: ExperimentJob, index: int,
                    row: SweepRow) -> None:
        with self._lock:
            if job.rows[index] is not None:
                return
            job.rows[index] = row
            job.failures.pop(index, None)
            self._stats["points_done"] += 1
            if row.cached:
                job.cached += 1
                self._stats["points_cached"] += 1
        # Journal outside the lock (pickling a big payload must not
        # block status polls), but strictly *before* the chaos crash:
        # a journaled row is durable even against the SIGKILL below.
        self.store.record_row(
            job.job_id, index,
            pickle.dumps(row, protocol=pickle.HIGHEST_PROTOCOL),
            row.cached)
        if job.crash_after_points is not None \
                and job.n_done == job.crash_after_points:
            os.kill(os.getpid(), signal.SIGKILL)
        self._check_job_chaos(job)

    def _record_failure(self, job: ExperimentJob, index: int,
                        failure: TaskFailure, attempts: int) -> None:
        with self._lock:
            if job.rows[index] is not None:
                return
            record = {
                "point": job.points[index].describe(),
                "kind": failure.kind,
                "attempts": attempts,
                "error": (f"{type(failure.error).__name__}: "
                          f"{failure.error}"
                          if failure.error is not None
                          else failure.summary()),
            }
            job.failures[index] = record
            self._stats["points_failed"] += 1
        self.store.record_failure(job.job_id, index, record)

    def _run_job(self, job: ExperimentJob, resumed: bool = False
                 ) -> None:
        with self._lock:
            job.state = JobState.RUNNING
            if job.started_at is None:
                job.started_at = time.time()
            job.worker = self.worker_id
        self.store.mark_running(job.job_id, job.started_at,
                                self.worker_id, resumed=resumed)

        # How much of the grid the warm cache can already serve — the
        # number that makes "re-submission is instant" observable.
        probe = ArtifactStore(self.cache_dir)
        precached = sum(
            1 for point in job.points
            if point_cache_key(point,
                               point_config(point, job.char_jobs))
            in probe)
        with self._lock:
            job.precached = precached
        self.store.set_precached(job.job_id, precached)

        deadline = (None if job.timeout_s is None
                    else time.monotonic() + job.timeout_s)
        # Resume from the journal: recorded rows and terminal failures
        # are replayed, only the remainder is (re)computed — and those
        # mostly land on warm artifact-cache entries.
        pending = [index for index in _scheduled_order(job.points)
                   if job.rows[index] is None
                   and index not in job.failures]
        attempt = 0
        while pending:
            self._check_job_chaos(job)
            wave = list(pending)
            tasks = [
                _ServiceTask(
                    PointTask(job.points[index], self.cache_dir,
                              job.char_jobs, False),
                    poison=job.poison)
                for index in wave
            ]
            timeout = (None if deadline is None
                       else max(0.0, deadline - time.monotonic()))
            outcomes = parallel_map_outcomes(
                _run_service_point, tasks, jobs=job.jobs,
                on_result=lambda slot, row, wave=wave:
                    self._record_row(job, wave[slot], row),
                timeout=timeout)
            retriable: List[int] = []
            for slot, outcome in enumerate(outcomes):
                index = wave[slot]
                if outcome.ok:
                    self._record_row(job, index, outcome.value)
                    continue
                failure = outcome.failure
                out_of_time = (deadline is not None
                               and time.monotonic() >= deadline)
                if failure.retriable and attempt < job.max_retries \
                        and not out_of_time:
                    retriable.append(index)
                else:
                    self._record_failure(job, index, failure,
                                         attempts=attempt + 1)
            if not retriable:
                break
            attempt += 1
            with self._lock:
                job.retries += len(retriable)
                self._stats["point_retries"] += len(retriable)
            self.store.record_retry_wave(job.job_id, job.retries,
                                         len(retriable), attempt)
            delay = retry_backoff_delay(self.retry_backoff_s, attempt,
                                        self._retry_rng)
            if delay > 0:
                time.sleep(delay)
            pending = retriable

        with self._lock:
            self._finalize(job)

    def _finalize(self, job: ExperimentJob) -> None:
        """Terminal-state bookkeeping; caller holds the lock."""
        if job.error is not None or job.n_done == 0:
            job.state = JobState.FAILED
            self._stats["jobs_failed"] += 1
        elif job.failures:
            job.state = JobState.PARTIAL
            self._stats["jobs_partial"] += 1
        else:
            job.state = JobState.DONE
            self._stats["jobs_done"] += 1
        job.finished_at = time.time()
        self._recent_outcomes.append((job.finished_at, job.state))
        try:
            self.store.finish_job(job.job_id, job.state,
                                  job.finished_at, job.error,
                                  job.retries, self.worker_id)
        except Exception:  # pragma: no cover - store closed mid-stop
            pass
        job.finished.set()

    def shutdown(self, wait: bool = True,
                 timeout: Optional[float] = 30.0) -> None:
        """Stop the drain thread (after the current job), release any
        held lease, and clean up."""
        if self._closed:
            return
        self._closed = True
        self._stop.set()
        self._queue.put(None)
        if wait:
            self._worker.join(timeout)
        active = self._active
        if active is not None and not self._worker.is_alive():
            # The drain thread is gone but a claim is still on the
            # books (abandoned mid-job) — free it for other workers.
            try:
                self.store.release_lease(active, self.worker_id)
            except Exception:  # pragma: no cover - defensive
                pass
        if wait and not self._worker.is_alive():
            self.store.close()
        if self._tempdir is not None:
            self._tempdir.cleanup()
            self._tempdir = None
