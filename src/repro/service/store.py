"""Durable job journal + lease table behind the experiment service.

:class:`JobStore` is the crash-safety layer under
:class:`~repro.service.jobs.JobManager`: a single SQLite file (stdlib
``sqlite3``, WAL mode, living beside the artifact cache) that journals

* every submission (the pickled spec + expanded points travel with the
  job, so a restarted service can rebuild it exactly),
* every per-point completion and terminal failure (write-ahead
  ``journal`` records plus normalized ``rows``/``failures`` tables),
* every state transition and lease event (claimed / reclaimed /
  renewed via heartbeat / released / deliberately dropped).

A service that is ``kill -9``-ed mid-job therefore loses nothing that
was committed: on the next startup the manager reloads terminal jobs
(served as before) and re-queues interrupted ones, which resume from
the journal — already-recorded rows are replayed, never recomputed.

The ``leases`` table is what lets a *fleet* of workers drain one
queue: :meth:`claim_next` atomically (``BEGIN IMMEDIATE``) hands the
oldest claimable job to exactly one worker, heartbeat renewals push
the lease deadline forward while the job runs, and a worker that dies
simply stops renewing — its expired lease makes the job claimable
again, exactly like a broken process pool makes a point retriable.

Everything in here is stdlib-only and fastapi-free on purpose: the
durability layer must work for ``repro serve --worker`` processes that
never import the HTTP stack.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

__all__ = ["JobStore", "JobClaim"]


_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    job_id      TEXT PRIMARY KEY,
    created_at  REAL NOT NULL,
    state       TEXT NOT NULL,
    spec        BLOB NOT NULL,
    knobs       TEXT NOT NULL,
    worker      TEXT,
    started_at  REAL,
    finished_at REAL,
    error       TEXT,
    precached   INTEGER NOT NULL DEFAULT 0,
    retries     INTEGER NOT NULL DEFAULT 0
);
CREATE TABLE IF NOT EXISTS rows (
    job_id      TEXT NOT NULL,
    point_index INTEGER NOT NULL,
    row         BLOB NOT NULL,
    cached      INTEGER NOT NULL,
    recorded_at REAL NOT NULL,
    PRIMARY KEY (job_id, point_index)
);
CREATE TABLE IF NOT EXISTS failures (
    job_id      TEXT NOT NULL,
    point_index INTEGER NOT NULL,
    failure     TEXT NOT NULL,
    recorded_at REAL NOT NULL,
    PRIMARY KEY (job_id, point_index)
);
CREATE TABLE IF NOT EXISTS leases (
    job_id      TEXT PRIMARY KEY,
    worker      TEXT NOT NULL,
    acquired_at REAL NOT NULL,
    deadline    REAL NOT NULL,
    renewals    INTEGER NOT NULL DEFAULT 0
);
CREATE TABLE IF NOT EXISTS journal (
    seq    INTEGER PRIMARY KEY AUTOINCREMENT,
    ts     REAL NOT NULL,
    job_id TEXT,
    event  TEXT NOT NULL,
    detail TEXT
);
"""


class JobClaim:
    """One successful :meth:`JobStore.claim_next` (slots, not a dict)."""

    __slots__ = ("job_id", "reclaimed")

    def __init__(self, job_id: str, reclaimed: bool) -> None:
        self.job_id = job_id
        self.reclaimed = reclaimed


class JobStore:
    """SQLite-backed job journal + lease table (thread/process safe).

    One connection per store instance, serialized by an internal lock
    within the process; WAL mode + a busy timeout make concurrent
    stores in *other* processes (an API node plus ``--worker``
    drainers) safe against each other.  All mutators commit before
    returning — a ``kill -9`` immediately after any call loses nothing
    that call journaled.

    Args:
        path: The SQLite file (parent directories are created).
        busy_timeout_s: How long a writer waits on a cross-process
            lock before erroring.
    """

    def __init__(self, path: Union[str, Path],
                 busy_timeout_s: float = 30.0) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(
            str(self.path), timeout=busy_timeout_s,
            isolation_level=None, check_same_thread=False)
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute(
            f"PRAGMA busy_timeout={int(busy_timeout_s * 1000)}")
        with self._lock:
            self._conn.executescript(_SCHEMA)
        self._closed = False

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    @contextmanager
    def _txn(self):
        """One atomic write: BEGIN IMMEDIATE ... COMMIT (or rollback)."""
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                yield self._conn
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
            self._conn.execute("COMMIT")

    @staticmethod
    def _journal(conn: sqlite3.Connection, event: str,
                 job_id: Optional[str],
                 detail: Optional[Dict[str, Any]] = None) -> None:
        conn.execute(
            "INSERT INTO journal (ts, job_id, event, detail) "
            "VALUES (?, ?, ?, ?)",
            (time.time(), job_id, event,
             None if detail is None else json.dumps(detail)))

    # ------------------------------------------------------------------
    # job lifecycle
    # ------------------------------------------------------------------
    def create_job(self, job_id: str, created_at: float,
                   spec_blob: bytes,
                   knobs: Dict[str, Any]) -> None:
        """Journal a submission (state ``queued``)."""
        with self._txn() as conn:
            conn.execute(
                "INSERT INTO jobs (job_id, created_at, state, spec, "
                "knobs) VALUES (?, ?, 'queued', ?, ?)",
                (job_id, created_at, sqlite3.Binary(spec_blob),
                 json.dumps(knobs)))
            self._journal(conn, "submitted", job_id)

    def mark_running(self, job_id: str, started_at: float,
                     worker: str, resumed: bool) -> None:
        with self._txn() as conn:
            conn.execute(
                "UPDATE jobs SET state='running', started_at=?, "
                "worker=? WHERE job_id=?",
                (started_at, worker, job_id))
            self._journal(conn, "resumed" if resumed else "started",
                          job_id, {"worker": worker})

    def finish_job(self, job_id: str, state: str, finished_at: float,
                   error: Optional[str], retries: int,
                   worker: str) -> None:
        """Terminal transition + lease release, atomically."""
        with self._txn() as conn:
            conn.execute(
                "UPDATE jobs SET state=?, finished_at=?, error=?, "
                "retries=? WHERE job_id=?",
                (state, finished_at, error, retries, job_id))
            conn.execute(
                "DELETE FROM leases WHERE job_id=? AND worker=?",
                (job_id, worker))
            self._journal(conn, state, job_id, {"worker": worker})

    def set_precached(self, job_id: str, precached: int) -> None:
        with self._txn() as conn:
            conn.execute("UPDATE jobs SET precached=? WHERE job_id=?",
                         (precached, job_id))

    def record_retry_wave(self, job_id: str, retries_total: int,
                          points: int, attempt: int) -> None:
        with self._txn() as conn:
            conn.execute("UPDATE jobs SET retries=? WHERE job_id=?",
                         (retries_total, job_id))
            self._journal(conn, "retry_wave", job_id,
                          {"points": points, "attempt": attempt})

    # ------------------------------------------------------------------
    # per-point journal
    # ------------------------------------------------------------------
    def record_row(self, job_id: str, index: int, row_blob: bytes,
                   cached: bool) -> bool:
        """Journal one finished point; idempotent (first write wins).

        Returns whether the row was newly recorded — a replay of an
        already-journaled point (a resumed job, a racing stale worker)
        is a no-op and adds no second ``point_done`` journal record,
        which is exactly what the no-double-run tests count.
        """
        with self._txn() as conn:
            cursor = conn.execute(
                "INSERT OR IGNORE INTO rows (job_id, point_index, row, "
                "cached, recorded_at) VALUES (?, ?, ?, ?, ?)",
                (job_id, index, sqlite3.Binary(row_blob), int(cached),
                 time.time()))
            if cursor.rowcount == 0:
                return False
            conn.execute(
                "DELETE FROM failures WHERE job_id=? AND point_index=?",
                (job_id, index))
            self._journal(conn, "point_done", job_id,
                          {"index": index, "cached": bool(cached)})
            return True

    def record_failure(self, job_id: str, index: int,
                       failure: Dict[str, Any]) -> bool:
        """Journal one terminal point failure; idempotent like rows."""
        with self._txn() as conn:
            cursor = conn.execute(
                "INSERT OR IGNORE INTO failures (job_id, point_index, "
                "failure, recorded_at) VALUES (?, ?, ?, ?)",
                (job_id, index, json.dumps(failure), time.time()))
            if cursor.rowcount == 0:
                return False
            self._journal(conn, "point_failed", job_id,
                          {"index": index,
                           "kind": failure.get("kind")})
            return True

    # ------------------------------------------------------------------
    # leases
    # ------------------------------------------------------------------
    def claim_next(self, worker: str, lease_s: float,
                   now: Optional[float] = None) -> Optional[JobClaim]:
        """Atomically claim the oldest claimable job for ``worker``.

        Claimable: ``queued`` or ``running`` with no lease or an
        expired one.  A ``running`` claim (or one stealing an expired
        lease) is a *reclaim* — the previous owner crashed or stalled,
        and the new owner resumes from the journal.
        """
        now = time.time() if now is None else now
        with self._txn() as conn:
            row = conn.execute(
                "SELECT j.job_id, j.state, l.worker "
                "FROM jobs j LEFT JOIN leases l ON l.job_id = j.job_id "
                "WHERE j.state IN ('queued', 'running') "
                "AND (l.job_id IS NULL OR l.deadline < ?) "
                "ORDER BY j.created_at, j.job_id LIMIT 1",
                (now,)).fetchone()
            if row is None:
                return None
            job_id, state, previous = row
            reclaimed = state == "running" or previous is not None
            conn.execute(
                "INSERT OR REPLACE INTO leases (job_id, worker, "
                "acquired_at, deadline, renewals) "
                "VALUES (?, ?, ?, ?, 0)",
                (job_id, worker, now, now + lease_s))
            self._journal(conn,
                          "reclaimed" if reclaimed else "claimed",
                          job_id,
                          {"worker": worker, "previous": previous})
            return JobClaim(job_id, reclaimed)

    def renew_lease(self, job_id: str, worker: str,
                    lease_s: float) -> bool:
        """Heartbeat: push the deadline forward; ``False`` = lost it."""
        with self._txn() as conn:
            cursor = conn.execute(
                "UPDATE leases SET deadline=?, renewals=renewals+1 "
                "WHERE job_id=? AND worker=?",
                (time.time() + lease_s, job_id, worker))
            return cursor.rowcount == 1

    def release_lease(self, job_id: str, worker: str) -> None:
        with self._txn() as conn:
            conn.execute(
                "DELETE FROM leases WHERE job_id=? AND worker=?",
                (job_id, worker))

    def drop_lease(self, job_id: str, worker: str) -> None:
        """Deliberately abandon a lease (the ``lease_drop`` chaos
        knob): journaled distinctly so tests can count drops."""
        with self._txn() as conn:
            conn.execute(
                "DELETE FROM leases WHERE job_id=? AND worker=?",
                (job_id, worker))
            self._journal(conn, "lease_dropped", job_id,
                          {"worker": worker})

    def lease_of(self, job_id: str
                 ) -> Optional[Tuple[str, float, int]]:
        """``(worker, deadline, renewals)`` of a live lease row."""
        with self._lock:
            row = self._conn.execute(
                "SELECT worker, deadline, renewals FROM leases "
                "WHERE job_id=?", (job_id,)).fetchone()
        return None if row is None else (row[0], row[1], row[2])

    # ------------------------------------------------------------------
    # loading (startup recovery + cross-worker status refresh)
    # ------------------------------------------------------------------
    _JOB_COLUMNS = ("job_id", "created_at", "state", "spec", "knobs",
                    "worker", "started_at", "finished_at", "error",
                    "precached", "retries")

    def _job_record(self, row: Tuple) -> Dict[str, Any]:
        record = dict(zip(self._JOB_COLUMNS, row))
        record["spec"] = bytes(record["spec"])
        record["knobs"] = json.loads(record["knobs"])
        return record

    def load_jobs(self) -> List[Dict[str, Any]]:
        """Every journaled job, oldest first (startup recovery)."""
        with self._lock:
            rows = self._conn.execute(
                f"SELECT {', '.join(self._JOB_COLUMNS)} FROM jobs "
                f"ORDER BY created_at, job_id").fetchall()
        return [self._job_record(row) for row in rows]

    def load_job(self, job_id: str) -> Optional[Dict[str, Any]]:
        with self._lock:
            row = self._conn.execute(
                f"SELECT {', '.join(self._JOB_COLUMNS)} FROM jobs "
                f"WHERE job_id=?", (job_id,)).fetchone()
        return None if row is None else self._job_record(row)

    def load_rows(self, job_id: str) -> Dict[int, Tuple[bytes, bool]]:
        """``{point_index: (pickled row, cached flag)}``."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT point_index, row, cached FROM rows "
                "WHERE job_id=?", (job_id,)).fetchall()
        return {index: (bytes(blob), bool(cached))
                for index, blob, cached in rows}

    def load_failures(self, job_id: str) -> Dict[int, Dict[str, Any]]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT point_index, failure FROM failures "
                "WHERE job_id=?", (job_id,)).fetchall()
        return {index: json.loads(text) for index, text in rows}

    def lifetime_counters(self) -> Dict[str, int]:
        """Service counters reconstructed from the journal tables, so
        ``stats()`` survives restarts (the sliding health window does
        not — a fresh process starts healthy by design)."""
        with self._lock:
            by_state = dict(self._conn.execute(
                "SELECT state, COUNT(*) FROM jobs "
                "GROUP BY state").fetchall())
            points_done, points_cached = self._conn.execute(
                "SELECT COUNT(*), COALESCE(SUM(cached), 0) "
                "FROM rows").fetchone()
            points_failed = self._conn.execute(
                "SELECT COUNT(*) FROM failures").fetchone()[0]
            retries = self._conn.execute(
                "SELECT COALESCE(SUM(retries), 0) "
                "FROM jobs").fetchone()[0]
        return {
            "jobs_submitted": sum(by_state.values()),
            "jobs_done": by_state.get("done", 0),
            "jobs_partial": by_state.get("partial", 0),
            "jobs_failed": by_state.get("failed", 0),
            "points_done": int(points_done),
            "points_cached": int(points_cached),
            "points_failed": int(points_failed),
            "point_retries": int(retries),
        }

    # ------------------------------------------------------------------
    # journal queries (tests, smoke scripts, debugging)
    # ------------------------------------------------------------------
    def journal_events(self, job_id: Optional[str] = None,
                       event: Optional[str] = None
                       ) -> List[Dict[str, Any]]:
        """Write-ahead records, oldest first, optionally filtered."""
        clauses, params = [], []
        if job_id is not None:
            clauses.append("job_id=?")
            params.append(job_id)
        if event is not None:
            clauses.append("event=?")
            params.append(event)
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        with self._lock:
            rows = self._conn.execute(
                f"SELECT seq, ts, job_id, event, detail FROM journal"
                f"{where} ORDER BY seq", params).fetchall()
        return [{"seq": seq, "ts": ts, "job_id": jid, "event": evt,
                 "detail": None if detail is None
                 else json.loads(detail)}
                for seq, ts, jid, evt, detail in rows]

    def count_events(self, job_id: str, event: str) -> int:
        with self._lock:
            return self._conn.execute(
                "SELECT COUNT(*) FROM journal WHERE job_id=? AND "
                "event=?", (job_id, event)).fetchone()[0]

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        with self._lock:
            try:
                self._conn.close()
            except sqlite3.Error:  # pragma: no cover - defensive
                pass

    def describe(self) -> str:
        return f"sqlite job store {str(self.path)!r}"
