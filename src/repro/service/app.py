"""FastAPI app over the :class:`~repro.service.jobs.JobManager`.

``fastapi`` is an optional extra (``pip install '.[service]'``, like
the ``jit`` extra for numba): this module keeps every fastapi import
inside :func:`create_app`, so ``import repro`` — and the whole tier-1
test suite — stays dependency-free.  The endpoints:

* ``POST /sweeps`` — submit a sweep; the body is the same JSON (or
  TOML, via ``Content-Type: application/toml``) mapping that
  ``load_sweep_file`` parses, plus optional job knobs (``jobs``,
  ``char_jobs``, ``timeout_s``, ``max_retries``) and chaos knobs
  (``poison``, ``crash_after_points``, ``lease_drop``).
* ``GET /sweeps`` — newest-first job summaries.
* ``GET /sweeps/{job_id}`` — live status: per-point
  done/cached/failed/remaining counts, retry counters, failures.
* ``GET /sweeps/{job_id}/result`` — tidy rows of a finished job
  (``?aggregated=1`` adds the seed-aggregated view, ``?format=csv``
  returns CSV); 409 while the job is still queued/running.
* ``GET /healthz`` — liveness plus structured service counters;
  ``degraded`` is scoped to a sliding window of recent job failures,
  lifetime totals live under ``counters``.

Jobs are journaled into a durable store shared with any
``repro serve --worker`` drainers — see :mod:`repro.service.jobs`.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from repro.service.jobs import JobManager, records_to_csv

__all__ = ["create_app", "fastapi_available"]


def fastapi_available() -> bool:
    """Whether the optional ``service`` extra is importable."""
    try:
        import fastapi  # noqa: F401
    except ImportError:
        return False
    return True


def create_app(manager: Optional[JobManager] = None,
               **manager_kwargs: Any):
    """Build the service app (imports fastapi on first call).

    Args:
        manager: An existing :class:`JobManager` to serve; by default
            one is created from ``manager_kwargs`` (``cache_dir``,
            ``jobs``, ``max_retries``, ...) and shut down with the
            app.
    """
    try:
        from contextlib import asynccontextmanager

        from fastapi import FastAPI, HTTPException, Request
        from fastapi.responses import PlainTextResponse
    except ImportError as error:  # pragma: no cover - env dependent
        raise RuntimeError(
            "the experiment service needs the optional 'service' "
            "extra: pip install '.[service]'") from error

    owns_manager = manager is None
    if manager is None:
        manager = JobManager(**manager_kwargs)

    @asynccontextmanager
    async def lifespan(app):
        yield
        if owns_manager:
            manager.shutdown(wait=False)

    app = FastAPI(title="repro experiment service",
                  description="Async sweep jobs over the "
                              "content-addressed experiment pipeline",
                  lifespan=lifespan)
    app.state.manager = manager

    def _job_status_or_404(job_id: str) -> Dict[str, Any]:
        status = manager.status(job_id)
        if status is None:
            raise HTTPException(status_code=404,
                                detail=f"unknown job {job_id!r}")
        return status

    @app.post("/sweeps", status_code=202)
    async def submit_sweep(request: Request) -> Dict[str, Any]:
        raw = await request.body()
        content_type = request.headers.get("content-type", "")
        try:
            if "toml" in content_type.lower():
                import tomllib

                data = tomllib.loads(raw.decode("utf-8"))
            else:
                data = json.loads(raw.decode("utf-8") or "{}")
        except (UnicodeDecodeError, ValueError) as error:
            raise HTTPException(status_code=422,
                                detail=f"unparseable sweep spec body: "
                                       f"{error}")
        try:
            status = manager.submit_mapping(data)
        except ValueError as error:
            raise HTTPException(status_code=422, detail=str(error))
        status["status_url"] = f"/sweeps/{status['job_id']}"
        status["result_url"] = f"/sweeps/{status['job_id']}/result"
        return status

    @app.get("/sweeps")
    def list_sweeps() -> Dict[str, Any]:
        jobs = manager.list_jobs()
        return {"n_jobs": len(jobs), "jobs": jobs}

    @app.get("/sweeps/{job_id}")
    def sweep_status(job_id: str) -> Dict[str, Any]:
        return _job_status_or_404(job_id)

    @app.get("/sweeps/{job_id}/result")
    def sweep_result(job_id: str, aggregated: bool = False,
                     format: str = "json"):
        _job_status_or_404(job_id)
        payload = manager.result(job_id, aggregated=aggregated)
        if payload is not None and "rows" not in payload:
            # Known job, not terminal yet: the client should keep
            # polling the status endpoint.
            raise HTTPException(
                status_code=409,
                detail=f"job {job_id!r} is {payload['state']}; "
                       f"poll /sweeps/{job_id} until it finishes")
        if format == "csv":
            records = (payload["aggregated"] if aggregated
                       else payload["rows"])
            return PlainTextResponse(records_to_csv(records),
                                     media_type="text/csv")
        if format != "json":
            raise HTTPException(status_code=422,
                                detail="format must be json or csv")
        return payload

    @app.get("/healthz")
    def healthz() -> Dict[str, Any]:
        # Degradation is scoped to a sliding window of recently
        # finished jobs (manager.health()); stats() keeps the
        # lifetime counters.
        return {**manager.health(), **manager.stats()}

    return app
