"""``python -m repro serve`` — run the experiment service or a worker.

Two modes share one durable job store (``service-jobs.sqlite3`` beside
the artifact cache, or ``--store``):

* **API node** (default): binds the FastAPI app (optional ``service``
  extra) to a host/port via uvicorn.  Its manager both accepts
  submissions and drains the queue.
* **Worker** (``--worker``): no HTTP, no fastapi — a stdlib-only drain
  loop that claims jobs from the shared store under a heartbeat lease
  and runs them.  Point any number of workers (on any machine that
  sees the store and cache paths) at the same ``--store`` and they
  drain one queue without double-running a point.

Example::

    pip install '.[service]'
    python -m repro serve --port 8000 --cache-dir .service-cache \
        --jobs 2
    # on each extra machine / terminal (no service extra needed):
    python -m repro serve --worker --cache-dir .service-cache

    curl -X POST localhost:8000/sweeps -H 'content-type: application/json' \
        -d '{"experiment": "fig8", "scale": "smoke", \
             "thresholds": [null, 900.0]}'
    curl localhost:8000/sweeps/<job_id>
    curl localhost:8000/sweeps/<job_id>/result
"""

from __future__ import annotations

import argparse
import signal
import threading
from typing import Optional, Sequence

__all__ = ["serve_main"]


def serve_main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Serve sweep experiments over HTTP: a durable job "
                    "queue over the sweep engine with one shared warm "
                    "artifact cache; --worker drains the same queue "
                    "without the HTTP layer",
        epilog="The HTTP mode requires the optional service extra "
               "(pip install '.[service]'); --worker mode is "
               "stdlib-only",
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default: 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8000,
                        help="bind port (default: 8000)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="artifact cache every job shares — a "
                             "directory or a registered scheme:// URL, "
                             "e.g. chaos://dir?read=0.1 for fault "
                             "injection (default: a service-lifetime "
                             "temp dir)")
    parser.add_argument("--store", default=None, metavar="PATH",
                        help="durable job store (SQLite); share it "
                             "between API nodes and --worker processes "
                             "to drain one queue (default: "
                             "service-jobs.sqlite3 beside the cache)")
    parser.add_argument("--worker", action="store_true",
                        help="run a headless lease-draining worker "
                             "instead of the HTTP API (stdlib-only)")
    parser.add_argument("--worker-id", default=None, metavar="ID",
                        help="lease identity of this process (default: "
                             "host-pid-random; must be unique)")
    parser.add_argument("--lease", type=float, default=30.0,
                        metavar="S",
                        help="lease heartbeat deadline in seconds; a "
                             "worker silent this long forfeits its job "
                             "(default: 30)")
    parser.add_argument("--poll", type=float, default=1.0, metavar="S",
                        help="how often to poll the store for jobs "
                             "submitted elsewhere (default: 1)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="default processes per job's grid points "
                             "(0 = all cores; default: 1)")
    parser.add_argument("--char-jobs", type=int, default=1, metavar="N",
                        help="default per-point characterization "
                             "sharding (default: 1)")
    parser.add_argument("--max-retries", type=int, default=2,
                        metavar="N",
                        help="retries for points lost to pool "
                             "breakage, with jittered exponential "
                             "backoff (default: 2)")
    parser.add_argument("--retry-backoff", type=float, default=0.5,
                        metavar="S",
                        help="retry backoff scale; wave n sleeps "
                             "uniform(0, scale * 2**(n-1)) seconds "
                             "(default: 0.5)")
    parser.add_argument("--timeout", type=float, default=None,
                        metavar="S",
                        help="default per-job wall-clock budget; "
                             "unfinished points fail, finished rows "
                             "survive (default: unlimited)")
    parser.add_argument("--log-level", default="info",
                        help="uvicorn log level (default: info)")
    args = parser.parse_args(argv)

    manager_kwargs = dict(
        cache_dir=args.cache_dir, jobs=args.jobs,
        char_jobs=args.char_jobs, max_retries=args.max_retries,
        retry_backoff_s=args.retry_backoff, timeout_s=args.timeout,
        store_path=args.store, worker_id=args.worker_id,
        lease_s=args.lease, poll_interval_s=args.poll)

    if args.worker:
        return _worker_main(manager_kwargs)

    try:
        import uvicorn

        from repro.service.app import create_app
        app = create_app(**manager_kwargs)
    except (ImportError, RuntimeError) as error:
        parser.error(
            f"{error}\nthe experiment service needs fastapi + uvicorn; "
            f"install the optional extra (pip install '.[service]') "
            f"or run a headless drainer with --worker")

    uvicorn.run(app, host=args.host, port=args.port,
                log_level=args.log_level)
    return 0


def _worker_main(manager_kwargs: dict) -> int:
    """Headless lease-draining worker over the shared job store.

    Stdlib-only on purpose: a fleet machine needs the repo and its
    base deps, never fastapi/uvicorn.  The manager's own drain thread
    does all the work; this loop just keeps the process alive and
    shuts down cleanly on SIGINT/SIGTERM (releasing any held lease so
    siblings reclaim the job immediately instead of after expiry).
    """
    from repro.service.jobs import JobManager

    manager = JobManager(**manager_kwargs)
    stats = manager.stats()["store"]
    print(f"repro worker {stats['worker_id']} draining "
          f"{stats['path']} (lease {stats['lease_s']}s, cache "
          f"{manager.cache_dir})", flush=True)

    stop = threading.Event()

    def _handle(signum, frame):  # noqa: ARG001 - signal signature
        stop.set()

    signal.signal(signal.SIGINT, _handle)
    signal.signal(signal.SIGTERM, _handle)
    try:
        while not stop.wait(0.5):
            pass
    finally:
        manager.shutdown(wait=True)
        print(f"repro worker {stats['worker_id']} stopped", flush=True)
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(serve_main())
