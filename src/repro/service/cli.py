"""``python -m repro serve`` — run the experiment service.

Binds the FastAPI app (optional ``service`` extra) to a host/port via
uvicorn, with one shared artifact cache for every job the service
runs.  Example::

    pip install '.[service]'
    python -m repro serve --port 8000 --cache-dir .service-cache \
        --jobs 2

    curl -X POST localhost:8000/sweeps -H 'content-type: application/json' \
        -d '{"experiment": "fig8", "scale": "smoke", \
             "thresholds": [null, 900.0]}'
    curl localhost:8000/sweeps/<job_id>
    curl localhost:8000/sweeps/<job_id>/result
"""

from __future__ import annotations

import argparse
from typing import Optional, Sequence

__all__ = ["serve_main"]


def serve_main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Serve sweep experiments over HTTP: an async job "
                    "queue over the sweep engine with one shared warm "
                    "artifact cache",
        epilog="Requires the optional service extra: "
               "pip install '.[service]'",
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default: 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8000,
                        help="bind port (default: 8000)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="artifact cache every job shares — a "
                             "directory or a registered scheme:// URL "
                             "(default: a service-lifetime temp dir)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="default processes per job's grid points "
                             "(0 = all cores; default: 1)")
    parser.add_argument("--char-jobs", type=int, default=1, metavar="N",
                        help="default per-point characterization "
                             "sharding (default: 1)")
    parser.add_argument("--max-retries", type=int, default=2,
                        metavar="N",
                        help="retries for points lost to pool "
                             "breakage, with exponential backoff "
                             "(default: 2)")
    parser.add_argument("--retry-backoff", type=float, default=0.5,
                        metavar="S",
                        help="first retry backoff in seconds; doubles "
                             "per wave (default: 0.5)")
    parser.add_argument("--timeout", type=float, default=None,
                        metavar="S",
                        help="default per-job wall-clock budget; "
                             "unfinished points fail, finished rows "
                             "survive (default: unlimited)")
    parser.add_argument("--log-level", default="info",
                        help="uvicorn log level (default: info)")
    args = parser.parse_args(argv)

    try:
        import uvicorn

        from repro.service.app import create_app
        app = create_app(cache_dir=args.cache_dir, jobs=args.jobs,
                         char_jobs=args.char_jobs,
                         max_retries=args.max_retries,
                         retry_backoff_s=args.retry_backoff,
                         timeout_s=args.timeout)
    except (ImportError, RuntimeError) as error:
        parser.error(
            f"{error}\nthe experiment service needs fastapi + uvicorn; "
            f"install the optional extra: pip install '.[service]'")

    uvicorn.run(app, host=args.host, port=args.port,
                log_level=args.log_level)
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(serve_main())
