"""The MAC unit of the systolic array, as three related netlists.

The paper analyzes the MAC in two halves (Sec. III-B): the multiplier gets
*dynamic* timing analysis per weight value, while the wide partial-sum
adder gets *static* timing analysis, and the two are composed through the
per-product-bit delays (Fig. 5).  To support that flow we expose the MAC
as three netlists sharing bit conventions:

* ``multiplier`` — activation x weight -> product (16 bits),
* ``adder``      — product + partial sum -> result (e.g. 22 bits),
* ``full``       — both composed, used for power characterization and for
  validating the split timing model.
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.netlist.adder import kogge_stone_adder, ripple_carry_adder
from repro.netlist.builder import NetlistBuilder
from repro.netlist.gates import Netlist
from repro.netlist.multiplier import booth_multiplier, signed_array_multiplier

ACT_BITS = 8
WEIGHT_BITS = 8
PRODUCT_BITS = 16
PSUM_BITS = 22

#: Multiplier generator per supported style.
_MULTIPLIER_STYLES = {
    "booth": booth_multiplier,
    "array": signed_array_multiplier,
}

#: Partial-sum adder generator per supported style.
_ADDER_STYLES = {
    "kogge_stone": kogge_stone_adder,
    "ripple": ripple_carry_adder,
}


@dataclass
class MacUnit:
    """Gate-level views of one MAC processing element.

    Attributes:
        full: Complete MAC netlist with inputs ``act``, ``w``, ``psum``
            and outputs ``product`` (16 bits) and ``result``.
        multiplier: Multiplier-only netlist (inputs ``act``/``w``, output
            ``product``) used for per-weight dynamic timing analysis.
        adder: Adder-only netlist (inputs ``product``/``psum``, output
            ``result``) used for static timing analysis.
        act_bits / weight_bits / product_bits / psum_bits: Bus widths.
    """

    full: Netlist
    multiplier: Netlist
    adder: Netlist
    act_bits: int = ACT_BITS
    weight_bits: int = WEIGHT_BITS
    product_bits: int = PRODUCT_BITS
    psum_bits: int = PSUM_BITS
    style: str = "booth"
    adder_style: str = "kogge_stone"

    def cell_counts(self) -> dict:
        """Cell histogram of the full MAC (for reporting)."""
        return self.full.cell_counts()


def _build_multiplier(act_bits: int, weight_bits: int, product_bits: int,
                      style: str) -> Netlist:
    builder = NetlistBuilder("multiplier")
    act = builder.input_bus("act", act_bits)
    weight = builder.input_bus("w", weight_bits)
    generate = _MULTIPLIER_STYLES[style]
    product = generate(builder, act, weight, product_bits)
    builder.mark_output_bus("product", product)
    return builder.build()


def _build_adder(product_bits: int, psum_bits: int,
                 adder_style: str) -> Netlist:
    builder = NetlistBuilder("adder")
    product = builder.input_bus("product", product_bits)
    psum = builder.input_bus("psum", psum_bits)
    product_ext = builder.sign_extend(product, psum_bits)
    add = _ADDER_STYLES[adder_style]
    result = add(builder, psum, product_ext)
    builder.mark_output_bus("result", result)
    return builder.build()


def _build_full(act_bits: int, weight_bits: int, product_bits: int,
                psum_bits: int, style: str, adder_style: str) -> Netlist:
    builder = NetlistBuilder("mac")
    act = builder.input_bus("act", act_bits)
    weight = builder.input_bus("w", weight_bits)
    psum = builder.input_bus("psum", psum_bits)
    generate = _MULTIPLIER_STYLES[style]
    product = generate(builder, act, weight, product_bits)
    builder.mark_output_bus("product", product)
    product_ext = builder.sign_extend(product, psum_bits)
    add = _ADDER_STYLES[adder_style]
    result = add(builder, psum, product_ext)
    builder.mark_output_bus("result", result)
    return builder.build()


def build_mac_unit(act_bits: int = ACT_BITS,
                   weight_bits: int = WEIGHT_BITS,
                   product_bits: int = PRODUCT_BITS,
                   psum_bits: int = PSUM_BITS,
                   style: str = "booth",
                   adder_style: str = "kogge_stone") -> MacUnit:
    """Generate the three netlist views of a MAC processing element.

    The defaults (8-bit operands, 16-bit product, 22-bit partial sum,
    Booth multiplier, Kogge-Stone partial-sum adder) match the paper's
    64x64 systolic array: 22 bits accumulate 64 signed 8x8 products
    (16 + log2(64) = 22), and a Booth datapath exhibits the per-weight
    power/timing spread of Figs. 2-3.

    Args:
        act_bits / weight_bits / product_bits / psum_bits: Bus widths.
        style: ``"booth"`` (default) or ``"array"``; see
            :mod:`repro.netlist.multiplier`.
        adder_style: ``"kogge_stone"`` (default) or ``"ripple"``
            partial-sum adder; see :mod:`repro.netlist.adder`.
    """
    if product_bits < act_bits + weight_bits:
        raise ValueError(
            "product bus too narrow for an exact signed product"
        )
    if psum_bits < product_bits:
        raise ValueError("partial-sum bus must be at least product width")
    if style not in _MULTIPLIER_STYLES:
        raise ValueError(
            f"unknown multiplier style {style!r}; "
            f"choose from {sorted(_MULTIPLIER_STYLES)}"
        )
    if adder_style not in _ADDER_STYLES:
        raise ValueError(
            f"unknown adder style {adder_style!r}; "
            f"choose from {sorted(_ADDER_STYLES)}"
        )
    return MacUnit(
        full=_build_full(act_bits, weight_bits, product_bits, psum_bits,
                         style, adder_style),
        multiplier=_build_multiplier(act_bits, weight_bits, product_bits,
                                     style),
        adder=_build_adder(product_bits, psum_bits, adder_style),
        act_bits=act_bits,
        weight_bits=weight_bits,
        product_bits=product_bits,
        psum_bits=psum_bits,
        style=style,
        adder_style=adder_style,
    )
