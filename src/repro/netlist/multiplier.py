"""Signed 8x8 multiplier generators (Booth radix-4 and array styles).

The systolic array's MAC multiplies an 8-bit signed weight with an 8-bit
signed activation.  Two classic two's-complement implementations are
provided:

* :func:`booth_multiplier` — modified-Booth (radix-4) multiplier.  The
  weight drives the Booth encoders, so a *fixed* weight value freezes the
  digit selection: weights with few nonzero Booth digits (0, powers of
  two, ±2) activate a single partial-product row and sensitize short
  paths, while digit-dense weights such as -105 (four nonzero digits)
  light up the whole reduction tree.  This reproduces the per-weight
  power/timing spread of the paper's synthesized MAC (Figs. 2 and 3),
  including its anchor points: -2 is cheap, -105 is expensive.
* :func:`signed_array_multiplier` — AND-gated partial-product array with
  a subtracted sign row; kept as a second implementation for ablations
  and cross-checks.

PowerPruning itself is implementation-agnostic: it only consumes the
measured per-weight characteristics.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.netlist.adder import kogge_stone_adder, ripple_carry_adder
from repro.netlist.builder import NetlistBuilder


def signed_array_multiplier(builder: NetlistBuilder,
                            activation: Sequence[int],
                            weight: Sequence[int],
                            product_width: int = 16) -> List[int]:
    """Build ``activation * weight`` for two's-complement inputs.

    Args:
        builder: Target builder.
        activation: LSB-first activation bus (the streamed operand).
        weight: LSB-first weight bus (the stationary operand; its bits
            gate the partial-product rows).
        product_width: Width of the returned product bus; 16 bits hold any
            8x8 signed product exactly.

    Returns:
        LSB-first product bus of ``product_width`` nets.
    """
    n_weight = len(weight)
    if n_weight < 2:
        raise ValueError("weight must be at least 2 bits (sign + value)")

    # Sign-extend the activation once; every row is a shifted, gated copy.
    act_ext = builder.sign_extend(activation, product_width)

    # Positive rows: weight bits 0..n-2 contribute +(activation << j).
    accumulator: List[int] = None  # type: ignore[assignment]
    for j in range(n_weight - 1):
        shifted = builder.shift_left(act_ext, j, product_width)
        row = builder.and_bus(shifted, weight[j])
        if accumulator is None:
            accumulator = row
        else:
            accumulator = ripple_carry_adder(builder, accumulator, row)

    # Sign row: the MSB of a two's-complement weight has value -2^(n-1),
    # so subtract (activation << n-1) when it is set.  Subtraction is
    # add-inverted-plus-one, with both the inversion and the carry-in
    # gated by the weight's sign bit:  acc + ~(row) + 1  ==  acc - row.
    sign_bit = weight[n_weight - 1]
    shifted = builder.shift_left(act_ext, n_weight - 1, product_width)
    sign_row = builder.and_bus(shifted, sign_bit)
    inverted = [builder.xor2(bit, sign_bit) for bit in sign_row]
    # When sign_bit=0 the row is all zeros and inverted stays all zeros
    # with carry-in 0 (no-op); when sign_bit=1 we add ~row + 1.
    product = ripple_carry_adder(builder, accumulator, inverted,
                                 cin=sign_bit)
    return product


def _booth_encoder(builder: NetlistBuilder, y1: int, y0: int,
                   ym: int) -> Tuple[int, int, int]:
    """Radix-4 Booth encoder for one digit.

    Args:
        builder: Target builder.
        y1: Weight bit ``2i+1`` (the digit's sign-ish bit).
        y0: Weight bit ``2i``.
        ym: Weight bit ``2i-1`` (constant 0 for the first digit).

    Returns:
        ``(one, two, neg)`` select wires: magnitude 1x, magnitude 2x and
        negate.  ``one`` and ``two`` are mutually exclusive; the encoded
        digit is ``(-1)**neg * (one + 2*two)`` informally, with the
        all-ones group (digit 0) yielding ``neg = 0``.
    """
    one = builder.xor2(y0, ym)
    # two = (y1 & ~y0 & ~ym) | (~y1 & y0 & ym)  == y1 XOR y0y m pattern
    y0_and_ym = builder.and2(y0, ym)
    y0_nor_ym = builder.nor2(y0, ym)
    two = builder.or2(
        builder.and2(y1, y0_nor_ym),
        builder.and2(builder.inv(y1), y0_and_ym),
    )
    neg = builder.and2(y1, builder.inv(y0_and_ym))
    return one, two, neg


def booth_multiplier(builder: NetlistBuilder,
                     activation: Sequence[int],
                     weight: Sequence[int],
                     product_width: int = 16) -> List[int]:
    """Build ``activation * weight`` with a modified-Booth multiplier.

    Args:
        builder: Target builder.
        activation: LSB-first activation bus (streamed operand).
        weight: LSB-first weight bus (stationary operand; drives the Booth
            encoders).  Must have even width.
        product_width: Output width; 16 bits are exact for 8x8.

    Returns:
        LSB-first product bus of ``product_width`` nets.
    """
    n_weight = len(weight)
    if n_weight % 2 != 0:
        raise ValueError("Booth radix-4 needs an even weight width")

    zero = builder.const(False)
    a_1x = builder.sign_extend(activation, product_width)
    a_2x = builder.shift_left(a_1x, 1, product_width)

    rows: List[List[int]] = []
    correction = [zero] * product_width
    for digit in range(n_weight // 2):
        y1 = weight[2 * digit + 1]
        y0 = weight[2 * digit]
        ym = weight[2 * digit - 1] if digit > 0 else zero
        one, two, neg = _booth_encoder(builder, y1, y0, ym)

        # Select |digit| * A, then conditionally complement; the missing
        # "+1" of two's complement goes into the shared correction word at
        # bit 2*digit (see module docstring for the algebra).
        magnitude = [
            builder.or2(builder.and2(one, b1), builder.and2(two, b2))
            for b1, b2 in zip(a_1x, a_2x)
        ]
        signed = [builder.xor2(bit, neg) for bit in magnitude]
        rows.append(builder.shift_left(signed, 2 * digit, product_width))
        correction[2 * digit] = neg

    total = rows[0]
    for row in rows[1:]:
        total = ripple_carry_adder(builder, total, row)
    # Fold in the negation corrections with a fast final adder.
    return kogge_stone_adder(builder, total, correction)
