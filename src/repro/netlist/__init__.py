"""Gate-level netlist data structures and arithmetic-circuit generators.

This subpackage plays the role of the authors' synthesized RTL: it builds
an explicit gate-level description of the 8-bit signed multiplier, the
partial-sum adder and the complete MAC unit of the systolic array, using
the cells of :mod:`repro.cells`.  The netlists are consumed by the logic,
power and timing engines in :mod:`repro.sim`.
"""

from repro.netlist.gates import GateType, Netlist
from repro.netlist.builder import NetlistBuilder
from repro.netlist.adder import ripple_carry_adder, kogge_stone_adder
from repro.netlist.multiplier import (
    booth_multiplier,
    signed_array_multiplier,
)
from repro.netlist.mac import MacUnit, build_mac_unit
from repro.netlist.verilog import to_verilog

__all__ = [
    "GateType",
    "Netlist",
    "NetlistBuilder",
    "ripple_carry_adder",
    "kogge_stone_adder",
    "booth_multiplier",
    "signed_array_multiplier",
    "MacUnit",
    "build_mac_unit",
    "to_verilog",
]
