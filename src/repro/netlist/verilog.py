"""Structural Verilog export of generated netlists.

Lets users take the exact MAC this reproduction characterizes into a real
synthesis flow (e.g. to re-run the paper's experiment on actual NanGate
libraries).  The output is plain structural Verilog-2001: one module,
wire-per-net, one primitive instance per gate, with the same cell names
as :mod:`repro.cells` (INV/AND2/.../MUX2).
"""

from __future__ import annotations

import re
from typing import Dict, List

from repro.netlist.gates import (
    CELL_NAME,
    GateType,
    Netlist,
    SOURCE_TYPES,
)

#: Verilog expression template per cell, with ``{a}``/``{b}``/``{s}``
#: operand slots (assign-style primitives keep the file tool-friendly).
_CELL_EXPR: Dict[GateType, str] = {
    GateType.INV: "~{a}",
    GateType.BUF: "{a}",
    GateType.AND2: "{a} & {b}",
    GateType.OR2: "{a} | {b}",
    GateType.NAND2: "~({a} & {b})",
    GateType.NOR2: "~({a} | {b})",
    GateType.XOR2: "{a} ^ {b}",
    GateType.XNOR2: "~({a} ^ {b})",
    GateType.MUX2: "{s} ? {b} : {a}",
}

_IDENT = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


def _port_name(name: str) -> str:
    """``act[3]`` -> ``act_3`` (flat ports keep the module generic)."""
    flat = name.replace("[", "_").replace("]", "")
    if not _IDENT.match(flat):
        raise ValueError(f"cannot map {name!r} to a Verilog identifier")
    return flat


def to_verilog(netlist: Netlist, module_name: str = None) -> str:
    """Render ``netlist`` as a structural Verilog module.

    Args:
        netlist: Circuit to export.
        module_name: Verilog module name (defaults to the netlist name).

    Returns:
        The complete module source as a string.
    """
    module_name = module_name or netlist.name
    if not _IDENT.match(module_name):
        raise ValueError(f"invalid module name {module_name!r}")

    inputs = {net: _port_name(name)
              for name, net in netlist.input_names.items()}
    outputs = {name: net for name, net in netlist.output_names.items()}

    def wire(net: int) -> str:
        if net in inputs:
            return inputs[net]
        return f"n{net}"

    lines: List[str] = []
    ports = list(inputs.values()) + [
        _port_name(name) for name in outputs
    ]
    lines.append(f"module {module_name} (")
    lines.append("    " + ",\n    ".join(ports))
    lines.append(");")
    for name in inputs.values():
        lines.append(f"  input  {name};")
    for name in outputs:
        lines.append(f"  output {_port_name(name)};")
    lines.append("")

    for net, gtype in enumerate(netlist.types):
        if gtype in SOURCE_TYPES and gtype != GateType.INPUT:
            lines.append(f"  wire n{net};")
            value = "1'b1" if gtype == GateType.CONST1 else "1'b0"
            lines.append(f"  assign n{net} = {value};")
    for net, gtype, fanins in netlist.iter_gates():
        operands = {"a": wire(fanins[0]) if fanins else ""}
        if len(fanins) > 1:
            operands["b"] = wire(fanins[1])
        if gtype == GateType.MUX2:
            operands = {"s": wire(fanins[0]), "a": wire(fanins[1]),
                        "b": wire(fanins[2])}
        expr = _CELL_EXPR[gtype].format(**operands)
        lines.append(f"  wire n{net};")
        lines.append(
            f"  assign n{net} = {expr};  // {CELL_NAME[gtype]}")

    lines.append("")
    for name, net in outputs.items():
        lines.append(f"  assign {_port_name(name)} = {wire(net)};")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"
