"""Netlist representation: typed gates over integer-indexed nets.

A :class:`Netlist` is a flat, topologically ordered list of nodes.  Each
node is either a primary input, a constant, or a gate instance driving one
net.  Nets are identified by their node index, so fanin references always
point at earlier nodes; this makes single-pass vectorized evaluation and
timing propagation possible (see :mod:`repro.sim`).

The structure intentionally mirrors what synthesis would emit: only simple
standard cells (INV/BUF/AND2/OR2/NAND2/NOR2/XOR2/XNOR2/MUX2), no buses and
no hierarchy.  Higher-level generators (:mod:`repro.netlist.adder`,
:mod:`repro.netlist.multiplier`) compose these cells into arithmetic
blocks.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterator, List, NamedTuple, Optional, Sequence, \
    Tuple

import numpy as np


class GateType(enum.IntEnum):
    """Node kinds appearing in a netlist.

    ``INPUT``, ``CONST0`` and ``CONST1`` are sources; the remaining members
    are standard cells with the obvious Boolean function.  The integer
    values index dispatch tables in the simulators, so they must stay
    dense and stable.
    """

    INPUT = 0
    CONST0 = 1
    CONST1 = 2
    INV = 3
    BUF = 4
    AND2 = 5
    OR2 = 6
    NAND2 = 7
    NOR2 = 8
    XOR2 = 9
    XNOR2 = 10
    MUX2 = 11  # fanins: (select, a, b) -> b if select else a


#: Gate types that consume no fanins.
SOURCE_TYPES = frozenset(
    {GateType.INPUT, GateType.CONST0, GateType.CONST1}
)

#: Number of fanins for each gate type.
FANIN_COUNT: Dict[GateType, int] = {
    GateType.INPUT: 0,
    GateType.CONST0: 0,
    GateType.CONST1: 0,
    GateType.INV: 1,
    GateType.BUF: 1,
    GateType.AND2: 2,
    GateType.OR2: 2,
    GateType.NAND2: 2,
    GateType.NOR2: 2,
    GateType.XOR2: 2,
    GateType.XNOR2: 2,
    GateType.MUX2: 3,
}

#: Map from gate type to the library cell name carrying its physical data.
CELL_NAME: Dict[GateType, str] = {
    GateType.INV: "INV",
    GateType.BUF: "BUF",
    GateType.AND2: "AND2",
    GateType.OR2: "OR2",
    GateType.NAND2: "NAND2",
    GateType.NOR2: "NOR2",
    GateType.XOR2: "XOR2",
    GateType.XNOR2: "XNOR2",
    GateType.MUX2: "MUX2",
}


class Netlist:
    """A topologically ordered gate-level netlist.

    Nodes are appended through the ``add_*`` methods and may only reference
    already existing nodes, which guarantees topological order by
    construction.  Primary inputs and outputs carry string names; buses use
    the ``name[i]`` convention (least significant bit is index 0).
    """

    def __init__(self, name: str = "netlist") -> None:
        self.name = name
        self.types: List[GateType] = []
        # Fanins are stored padded to three entries; unused slots are -1.
        self.fanins: List[Tuple[int, int, int]] = []
        self.input_names: Dict[str, int] = {}
        self.output_names: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_input(self, name: str) -> int:
        """Append a primary input named ``name`` and return its net index."""
        if name in self.input_names:
            raise ValueError(f"duplicate input name {name!r}")
        idx = self._append(GateType.INPUT, ())
        self.input_names[name] = idx
        return idx

    def add_const(self, value: bool) -> int:
        """Append a constant-0 or constant-1 source."""
        return self._append(
            GateType.CONST1 if value else GateType.CONST0, ()
        )

    def add_gate(self, gtype: GateType, *fanins: int) -> int:
        """Append a gate of ``gtype`` driven by ``fanins``.

        Fanins must reference existing nodes (enforced), which keeps the
        list topologically sorted.
        """
        if gtype in SOURCE_TYPES:
            raise ValueError("use add_input/add_const for source nodes")
        expected = FANIN_COUNT[gtype]
        if len(fanins) != expected:
            raise ValueError(
                f"{gtype.name} expects {expected} fanins, got {len(fanins)}"
            )
        return self._append(gtype, fanins)

    def mark_output(self, name: str, net: int) -> None:
        """Expose ``net`` as a primary output called ``name``."""
        if name in self.output_names:
            raise ValueError(f"duplicate output name {name!r}")
        self._check_net(net)
        self.output_names[name] = net

    def _append(self, gtype: GateType, fanins: Sequence[int]) -> int:
        for fanin in fanins:
            self._check_net(fanin)
        padded = tuple(fanins) + (-1,) * (3 - len(fanins))
        self.types.append(gtype)
        self.fanins.append(padded)  # type: ignore[arg-type]
        return len(self.types) - 1

    def _check_net(self, net: int) -> None:
        if not 0 <= net < len(self.types):
            raise ValueError(f"net index {net} out of range")

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.types)

    @property
    def num_gates(self) -> int:
        """Number of actual cell instances (sources excluded)."""
        return sum(1 for t in self.types if t not in SOURCE_TYPES)

    def input_bus(self, prefix: str, width: int) -> List[int]:
        """Net indices of input bus ``prefix[0..width-1]``."""
        return [self.input_names[f"{prefix}[{i}]"] for i in range(width)]

    def output_bus(self, prefix: str, width: int) -> List[int]:
        """Net indices of output bus ``prefix[0..width-1]``."""
        return [self.output_names[f"{prefix}[{i}]"] for i in range(width)]

    def iter_gates(self) -> Iterator[Tuple[int, GateType, Tuple[int, ...]]]:
        """Yield ``(net, type, fanins)`` for every cell instance."""
        for net, (gtype, fanins) in enumerate(zip(self.types, self.fanins)):
            if gtype not in SOURCE_TYPES:
                yield net, gtype, tuple(
                    f for f in fanins if f >= 0
                )

    def cell_counts(self) -> Dict[str, int]:
        """Histogram of cell names used, e.g. ``{"XOR2": 112, ...}``."""
        counts: Dict[str, int] = {}
        for __, gtype, __fanins in self.iter_gates():
            cell = CELL_NAME[gtype]
            counts[cell] = counts.get(cell, 0) + 1
        return counts

    # ------------------------------------------------------------------
    # packed views for the vectorized simulators
    # ------------------------------------------------------------------
    def packed(self) -> "PackedNetlist":
        """Return numpy-packed arrays used by the simulators."""
        return PackedNetlist(self)


class GateGroup(NamedTuple):
    """One level's worth of same-type gates, ready for fancy indexing.

    All gates in a group live on the same topological level and share a
    :class:`GateType`, so one numpy expression evaluates the whole group
    (``values[dst] = values[f0] & values[f1]`` for an AND2 group).
    Unused fanin slots hold -1 and must not be indexed; ``n_fanins``
    says how many of ``f0``/``f1``/``f2`` are live for this type.
    """

    gtype: int
    n_fanins: int
    dst: np.ndarray
    f0: np.ndarray
    f1: np.ndarray
    f2: np.ndarray


class LevelSchedule:
    """Levelized, type-grouped execution plan of a netlist.

    Topologically levelizes the nodes (sources at level 0, a gate one
    past its deepest fanin) and groups each level's gates by type.  The
    vectorized engines then run ~``depth x used-gate-types`` batched
    numpy operations per pass instead of one Python iteration per gate
    — the schedule is what turns the simulators from interpreted gate
    walks into compiled-style kernels.

    Attributes:
        levels: ``int32`` per-node topological level.
        groups: :class:`GateGroup` tuple in level-major order; executing
            them in sequence respects every data dependency (groups on
            one level only read nets of strictly earlier levels).
        const0 / const1: Net indices of constant sources.
    """

    def __init__(self, packed: "PackedNetlist") -> None:
        types = packed.types
        f0, f1, f2 = packed.fanin0, packed.fanin1, packed.fanin2
        n = len(types)

        levels = np.zeros(n, dtype=np.int32)
        fanins = (f0, f1, f2)
        for net in range(n):
            deepest = -1
            for fan in fanins:
                fanin = fan[net]
                if fanin >= 0 and levels[fanin] > deepest:
                    deepest = levels[fanin]
            if deepest >= 0:
                levels[net] = deepest + 1
        self.levels = levels

        self.const0 = np.nonzero(types == GateType.CONST0)[0]
        self.const1 = np.nonzero(types == GateType.CONST1)[0]

        source_values = tuple(int(t) for t in SOURCE_TYPES)
        gate_nets = np.nonzero(~np.isin(types, source_values))[0]
        # Level-major, type-minor order keeps same-type gates of one
        # level contiguous; np.split at the (level, type) boundaries
        # yields the groups.
        order = np.lexsort((types[gate_nets], levels[gate_nets]))
        sorted_nets = gate_nets[order].astype(np.int32)
        sort_key = (levels[sorted_nets].astype(np.int64) << 8) \
            | types[sorted_nets].astype(np.int64)
        boundaries = np.nonzero(np.diff(sort_key))[0] + 1
        groups: List[GateGroup] = []
        for segment in np.split(sorted_nets, boundaries):
            if not segment.size:
                continue
            gtype = GateType(int(types[segment[0]]))
            groups.append(GateGroup(
                gtype=int(gtype),
                n_fanins=FANIN_COUNT[gtype],
                dst=segment,
                f0=f0[segment],
                f1=f1[segment],
                f2=f2[segment],
            ))
        self.groups: Tuple[GateGroup, ...] = tuple(groups)
        self._fanin_groups: Optional[Tuple[GateGroup, ...]] = None

    @property
    def fanin_groups(self) -> Tuple[GateGroup, ...]:
        """Level-major groups keyed on fanin *count* instead of type.

        Engines whose per-gate function is type-independent (dynamic
        arrival propagation maxes over fanins regardless of the cell)
        can merge all of a level's same-arity gates into one batched
        op; with ~9 gate types collapsing to <= 3 arities this roughly
        halves the number of numpy dispatches per pass.  ``gtype`` is
        ``-1`` in the merged groups (they are type-blind).
        """
        if self._fanin_groups is None:
            by_key: Dict[Tuple[int, int], List[GateGroup]] = {}
            for group in self.groups:
                level = int(self.levels[group.dst[0]])
                by_key.setdefault((level, group.n_fanins),
                                  []).append(group)
            merged = []
            for (__, n_fanins), members in sorted(by_key.items()):
                merged.append(GateGroup(
                    gtype=-1,
                    n_fanins=n_fanins,
                    dst=np.concatenate([m.dst for m in members]),
                    f0=np.concatenate([m.f0 for m in members]),
                    f1=np.concatenate([m.f1 for m in members]),
                    f2=np.concatenate([m.f2 for m in members]),
                ))
            self._fanin_groups = tuple(merged)
        return self._fanin_groups

    @property
    def n_levels(self) -> int:
        """Depth of the netlist (levels including the source level)."""
        return int(self.levels.max()) + 1 if self.levels.size else 0

    def stats(self) -> Dict[str, int]:
        """Schedule shape summary (for benchmarks and logs)."""
        return {
            "n_nets": int(self.levels.size),
            "n_gates": int(sum(g.dst.size for g in self.groups)),
            "n_levels": self.n_levels,
            "n_groups": len(self.groups),
        }


class PackedNetlist:
    """Numpy view of a :class:`Netlist` for vectorized engines.

    Attributes:
        types: ``int8`` array of :class:`GateType` values, one per node.
        fanin0/fanin1/fanin2: ``int32`` arrays of fanin net indices
            (-1 where unused).
    """

    def __init__(self, netlist: Netlist) -> None:
        self.netlist = netlist
        self.types = np.asarray(netlist.types, dtype=np.int8)
        fanins = np.asarray(netlist.fanins, dtype=np.int32)
        if fanins.size == 0:
            fanins = fanins.reshape(0, 3)
        self.fanin0 = fanins[:, 0]
        self.fanin1 = fanins[:, 1]
        self.fanin2 = fanins[:, 2]
        self._schedule: Optional[LevelSchedule] = None
        self._program = None

    def __len__(self) -> int:
        return len(self.types)

    @property
    def schedule(self) -> LevelSchedule:
        """Levelized execution plan, built once and cached.

        The cached schedule travels with the object through pickling,
        so characterization workers receiving a packed netlist do not
        rebuild it per shard.
        """
        if self._schedule is None:
            self._schedule = LevelSchedule(self)
        return self._schedule

    @property
    def program(self):
        """Flattened level program, built once and cached.

        The compiled execution backends (:mod:`repro.sim.compiled`)
        consume this opcode-array form of :attr:`schedule`.  Like the
        schedule, the cached program travels through pickling so
        characterization workers receive it warm.
        """
        if self._program is None:
            # Imported lazily: sim.program depends on this module.
            from repro.sim.program import LevelProgram
            self._program = LevelProgram(self.schedule)
        return self._program

    def _cell_table(self, per_cell) -> np.ndarray:
        """Per-:class:`GateType` lookup table from a per-cell function."""
        table = np.zeros(len(GateType), dtype=np.float64)
        for gtype, cell in CELL_NAME.items():
            table[gtype] = per_cell(cell)
        return table

    def gate_delays(self, library) -> np.ndarray:
        """Per-node delay vector (ps); sources have zero delay."""
        return self._cell_table(library.delay_ps)[self.types]

    def gate_energies(self, library) -> np.ndarray:
        """Per-node toggle energy vector (fJ); sources have zero energy."""
        return self._cell_table(library.energy_fj)[self.types]

    def total_leakage_nw(self, library) -> float:
        """Summed leakage of all cell instances in nanowatts."""
        return sum(
            library.leakage_nw(CELL_NAME[gtype])
            for __, gtype, __fanins in self.netlist.iter_gates()
        )
