"""Adder generators: ripple-carry and Kogge-Stone prefix adders.

The MAC unit uses a ripple-carry array inside the multiplier (cheap,
synthesis-like) and a Kogge-Stone prefix adder for the wide partial-sum
addition, mirroring how synthesis tools implement timing-critical adders.
Both generators work LSB-first and wrap around (no carry-out), matching
the fixed-width two's-complement arithmetic of the accelerator datapath.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.netlist.builder import NetlistBuilder


def ripple_carry_adder(builder: NetlistBuilder, a: Sequence[int],
                       b: Sequence[int],
                       cin: Optional[int] = None) -> List[int]:
    """Build ``a + b (+ cin)`` with a ripple-carry chain.

    Args:
        builder: Target builder.
        a: LSB-first addend nets.
        b: LSB-first addend nets, same width as ``a``.
        cin: Optional carry-in net (e.g. for two's-complement subtraction).

    Returns:
        Sum bus of the same width as the inputs; the final carry-out is
        dropped (modular arithmetic).
    """
    if len(a) != len(b):
        raise ValueError(f"width mismatch: {len(a)} vs {len(b)}")
    carry = cin if cin is not None else builder.const(False)
    total: List[int] = []
    for a_bit, b_bit in zip(a, b):
        sum_bit, carry = builder.full_adder(a_bit, b_bit, carry)
        total.append(sum_bit)
    return total


def kogge_stone_adder(builder: NetlistBuilder, a: Sequence[int],
                      b: Sequence[int],
                      cin: Optional[int] = None) -> List[int]:
    """Build ``a + b (+ cin)`` with a Kogge-Stone parallel-prefix adder.

    Logarithmic depth, which keeps the partial-sum addition off the MAC's
    critical path just like the timing-driven synthesis the paper relies
    on.  Returns the sum bus (carry-out dropped).
    """
    if len(a) != len(b):
        raise ValueError(f"width mismatch: {len(a)} vs {len(b)}")
    width = len(a)
    if width == 0:
        return []

    # Bitwise generate/propagate.
    generate = [builder.and2(x, y) for x, y in zip(a, b)]
    propagate = [builder.xor2(x, y) for x, y in zip(a, b)]
    # Prefix network needs AND-propagate separately from XOR-propagate for
    # the sum; for the prefix tree the XOR version is a valid propagate.
    tree_g = list(generate)
    tree_p = list(propagate)

    distance = 1
    while distance < width:
        next_g = list(tree_g)
        next_p = list(tree_p)
        for i in range(distance, width):
            carried = builder.and2(tree_p[i], tree_g[i - distance])
            next_g[i] = builder.or2(tree_g[i], carried)
            next_p[i] = builder.and2(tree_p[i], tree_p[i - distance])
        tree_g, tree_p = next_g, next_p
        distance *= 2

    # tree_g[i] is now the carry out of position i assuming carry-in 0;
    # fold in the external carry-in where present.
    if cin is None:
        carries_in = [builder.const(False)] + tree_g[:-1]
        total = [
            builder.xor2(p, c) for p, c in zip(propagate, carries_in)
        ]
    else:
        carries: List[int] = []
        for g, p in zip(tree_g, tree_p):
            carries.append(builder.or2(g, builder.and2(p, cin)))
        carries_in = [cin] + carries[:-1]
        total = [
            builder.xor2(p, c) for p, c in zip(propagate, carries_in)
        ]
    return total
