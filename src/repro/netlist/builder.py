"""Convenience wrapper for composing netlists out of arithmetic idioms.

The :class:`NetlistBuilder` adds bus handling and the classic gate recipes
(half adder, full adder, two's-complement helpers) on top of the flat
:class:`~repro.netlist.gates.Netlist`.  All generators in this package are
written against it.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.netlist.gates import GateType, Netlist


class NetlistBuilder:
    """Structured construction helper around a :class:`Netlist`."""

    def __init__(self, name: str = "netlist") -> None:
        self.netlist = Netlist(name)
        self._const0: int = -1
        self._const1: int = -1

    # ------------------------------------------------------------------
    # sources
    # ------------------------------------------------------------------
    def input_bus(self, prefix: str, width: int) -> List[int]:
        """Create inputs ``prefix[0..width-1]`` (LSB first)."""
        return [
            self.netlist.add_input(f"{prefix}[{i}]") for i in range(width)
        ]

    def const(self, value: bool) -> int:
        """Shared constant source (created once per polarity)."""
        if value:
            if self._const1 < 0:
                self._const1 = self.netlist.add_const(True)
            return self._const1
        if self._const0 < 0:
            self._const0 = self.netlist.add_const(False)
        return self._const0

    # ------------------------------------------------------------------
    # primitive gates
    # ------------------------------------------------------------------
    def inv(self, a: int) -> int:
        return self.netlist.add_gate(GateType.INV, a)

    def buf(self, a: int) -> int:
        return self.netlist.add_gate(GateType.BUF, a)

    def and2(self, a: int, b: int) -> int:
        return self.netlist.add_gate(GateType.AND2, a, b)

    def or2(self, a: int, b: int) -> int:
        return self.netlist.add_gate(GateType.OR2, a, b)

    def nand2(self, a: int, b: int) -> int:
        return self.netlist.add_gate(GateType.NAND2, a, b)

    def nor2(self, a: int, b: int) -> int:
        return self.netlist.add_gate(GateType.NOR2, a, b)

    def xor2(self, a: int, b: int) -> int:
        return self.netlist.add_gate(GateType.XOR2, a, b)

    def xnor2(self, a: int, b: int) -> int:
        return self.netlist.add_gate(GateType.XNOR2, a, b)

    def mux2(self, select: int, a: int, b: int) -> int:
        """``b`` when ``select`` is high, else ``a``."""
        return self.netlist.add_gate(GateType.MUX2, select, a, b)

    # ------------------------------------------------------------------
    # arithmetic idioms
    # ------------------------------------------------------------------
    def half_adder(self, a: int, b: int) -> Tuple[int, int]:
        """Return ``(sum, carry)`` of a half adder."""
        return self.xor2(a, b), self.and2(a, b)

    def full_adder(self, a: int, b: int, cin: int) -> Tuple[int, int]:
        """Return ``(sum, carry)`` of a textbook two-XOR full adder."""
        axb = self.xor2(a, b)
        total = self.xor2(axb, cin)
        carry = self.or2(self.and2(a, b), self.and2(axb, cin))
        return total, carry

    def and_bus(self, bus: Sequence[int], bit: int) -> List[int]:
        """AND every wire of ``bus`` with the single wire ``bit``."""
        return [self.and2(wire, bit) for wire in bus]

    def invert_bus(self, bus: Sequence[int]) -> List[int]:
        """Bitwise complement of a bus."""
        return [self.inv(wire) for wire in bus]

    def sign_extend(self, bus: Sequence[int], width: int) -> List[int]:
        """Sign-extend ``bus`` (two's complement, LSB first) to ``width``."""
        if width < len(bus):
            raise ValueError("cannot sign-extend to a narrower width")
        bus = list(bus)
        return bus + [bus[-1]] * (width - len(bus))

    def shift_left(self, bus: Sequence[int], amount: int,
                   width: int) -> List[int]:
        """Logical left shift by ``amount``, truncated/padded to ``width``."""
        zero = self.const(False)
        shifted = [zero] * amount + list(bus)
        shifted = shifted[:width]
        return shifted + [zero] * (width - len(shifted))

    def mark_output_bus(self, prefix: str, bus: Sequence[int]) -> None:
        """Expose ``bus`` as outputs ``prefix[0..n-1]``."""
        for i, net in enumerate(bus):
            self.netlist.mark_output(f"{prefix}[{i}]", net)

    def build(self) -> Netlist:
        """Return the underlying netlist."""
        return self.netlist
