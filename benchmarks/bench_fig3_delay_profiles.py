"""Benchmark regenerating Fig. 3 (delay profiles of two weights)."""

from conftest import run_once

from repro.experiments import fig3


def test_fig3_delay_profiles(benchmark, scale):
    result = run_once(benchmark, fig3.run, scale)
    print()
    for profile in result.profiles.values():
        print(fig3.format_histogram(profile, result.time_scale))

    # Fig. 3 shape: -105 sensitizes much slower paths than 64, and the
    # calibrated global max sits at the paper's 180 ps.
    max_delays = result.max_delays()
    assert max_delays[-105] > max_delays[64]
    assert abs(max_delays[-105] - 180.0) < 1.0
