"""Benchmark the artifact cache: cold vs warm pipeline wall-time,
plus serial-vs-sharded per-weight characterization.

One Table I row (LeNet-5) runs twice against the same on-disk cache
directory: the cold run computes and stores every stage, the warm run
resumes all of them.  The warm/cold ratio anchors the perf trajectory
of the stage-graph engine — a regression here means stage keys started
churning or an expensive step escaped the graph.

The characterization-shard benchmark runs the same per-weight power
characterization serially and split across 4 worker processes; the
per-weight RNG seeding must keep the results bit-for-bit identical
while the wall-time drops by at least 2x.
"""

import os
import time

import numpy as np
import pytest
from conftest import run_once

from repro.cells import default_library
from repro.core.pipeline import PowerPruner
from repro.experiments.config import NETWORK_SPECS, pipeline_config
from repro.netlist import build_mac_unit
from repro.power import (
    PartialSumBinner,
    TransitionDistribution,
    WeightPowerCharacterizer,
)
from repro.power.binning import BinnedTransitions


def _run_row(scale: str, cache_dir) -> "object":
    config = pipeline_config(NETWORK_SPECS[0], scale)
    return PowerPruner(config, cache_dir=cache_dir).run()


def test_pipeline_cache_cold_vs_warm(benchmark, scale, tmp_path):
    cache_dir = tmp_path / "artifact-cache"

    start = time.perf_counter()
    cold_report = _run_row(scale, cache_dir)
    cold_s = time.perf_counter() - start

    warm_report = run_once(benchmark, _run_row, scale, cache_dir)
    warm_s = benchmark.stats["mean"]

    speedup = cold_s / max(warm_s, 1e-9)
    print(f"\ncold {cold_s:.2f} s -> warm {warm_s:.3f} s "
          f"({speedup:.0f}x)")

    assert warm_report.as_dict() == cold_report.as_dict()
    # Acceptance floor: a warm rerun must be at least 5x faster.
    assert speedup >= 5.0


def _build_characterizer(n_samples: int) -> WeightPowerCharacterizer:
    rng = np.random.default_rng(0)
    stream = rng.integers(-(1 << 18), 1 << 18, 6000)
    binner = PartialSumBinner(n_bins=25).fit(stream, rng=rng)
    return WeightPowerCharacterizer(
        build_mac_unit(), default_library(),
        TransitionDistribution.diagonal(256),
        BinnedTransitions.from_stream(binner, stream),
        n_samples=n_samples,
    )


def test_characterization_shard_speedup(benchmark, scale):
    """Sharding the per-weight stage across 4 processes: >= 2x, and
    bit-for-bit identical to the serial run."""
    cores = os.cpu_count() or 1
    if cores < 4:
        pytest.skip(f"4-way shard speedup needs >= 4 cores, have "
                    f"{cores} (bitwise equality is covered by "
                    f"tests/test_hw.py on any machine)")
    n_samples = {"smoke": 2500, "ci": 5000}.get(scale, 10000)
    characterizer = _build_characterizer(n_samples)
    weights = list(range(-127, 128))

    start = time.perf_counter()
    serial = characterizer.characterize(weights, seed=0, jobs=1)
    serial_s = time.perf_counter() - start

    sharded = run_once(benchmark, characterizer.characterize, weights,
                       seed=0, jobs=4)
    sharded_s = benchmark.stats["mean"]

    speedup = serial_s / max(sharded_s, 1e-9)
    print(f"\nserial {serial_s:.2f} s -> 4-way sharded "
          f"{sharded_s:.2f} s ({speedup:.1f}x)")

    np.testing.assert_array_equal(serial.power_uw, sharded.power_uw)
    assert serial.energy_scale == sharded.energy_scale
    # Acceptance floor: 4 shards must buy at least a 2x speedup.
    assert speedup >= 2.0
