"""Benchmark the artifact cache: cold vs warm pipeline wall-time.

One Table I row (LeNet-5) runs twice against the same on-disk cache
directory: the cold run computes and stores every stage, the warm run
resumes all of them.  The warm/cold ratio anchors the perf trajectory
of the stage-graph engine — a regression here means stage keys started
churning or an expensive step escaped the graph.
"""

import time

from conftest import run_once

from repro.core.pipeline import PowerPruner
from repro.experiments.config import NETWORK_SPECS, pipeline_config


def _run_row(scale: str, cache_dir) -> "object":
    config = pipeline_config(NETWORK_SPECS[0], scale)
    return PowerPruner(config, cache_dir=cache_dir).run()


def test_pipeline_cache_cold_vs_warm(benchmark, scale, tmp_path):
    cache_dir = tmp_path / "artifact-cache"

    start = time.perf_counter()
    cold_report = _run_row(scale, cache_dir)
    cold_s = time.perf_counter() - start

    warm_report = run_once(benchmark, _run_row, scale, cache_dir)
    warm_s = benchmark.stats["mean"]

    speedup = cold_s / max(warm_s, 1e-9)
    print(f"\ncold {cold_s:.2f} s -> warm {warm_s:.3f} s "
          f"({speedup:.0f}x)")

    assert warm_report.as_dict() == cold_report.as_dict()
    # Acceptance floor: a warm rerun must be at least 5x faster.
    assert speedup >= 5.0
