"""Benchmark regenerating Fig. 8 (power threshold vs accuracy)."""

from conftest import run_once

from repro.experiments import fig8
from repro.experiments.config import NETWORK_SPECS


def test_fig8_power_threshold_sweep(benchmark, scale):
    specs = NETWORK_SPECS[:1] if scale == "smoke" else NETWORK_SPECS[:2]
    result = run_once(benchmark, fig8.run, scale, specs)
    print()
    print(fig8.format_series(result))

    for label, series in result.points.items():
        counts = [point.n_weights for point in series]
        powers = [point.power_opt.total_uw for point in series]
        # Fig. 8 shape: lower thresholds keep fewer weight values ...
        assert counts == sorted(counts, reverse=True), label
        # ... and power never increases as the threshold tightens.
        assert powers[-1] <= powers[0] * 1.02, label
        # Accuracy stays usable over the paper's threshold range.
        assert max(point.accuracy for point in series) > 0.4, label
