"""Ablation: delay-threshold search granularity.

The paper searches delay thresholds in 10 ps steps and notes the
granularity "can be lowered if necessary, but at the expense of more
runtime".  This bench quantifies what a 5 ps and a 2.5 ps grid would buy:
finer grids can stop at a slightly higher surviving-value count for the
same achieved voltage, or reach a slightly lower voltage for the same
survivor budget.
"""

import numpy as np
from conftest import run_once

from repro.cells import default_library
from repro.cells.voltage import VoltageModel
from repro.netlist import build_mac_unit
from repro.timing import DelaySelector, WeightDelayProfiler, \
    WeightTimingTable

WEIGHTS = [-105, -85, -64, -33, -8, -2, 0, 2, 8, 33, 64, 85, 105, 127]


def _timing_table():
    profiler = WeightDelayProfiler(build_mac_unit(), default_library())
    act_from, act_to = profiler.all_transitions()
    rng = np.random.default_rng(0)
    chosen = rng.choice(act_from.size, 6000, replace=False)
    return WeightTimingTable.characterize(
        profiler, weights=WEIGHTS,
        transitions=(act_from[chosen], act_to[chosen]), floor_ps=110.0)


def test_ablation_threshold_granularity(benchmark, scale):
    table = _timing_table()
    selector = DelaySelector(table, n_restarts=5)
    voltage = VoltageModel()

    def sweep():
        results = {}
        for granularity in (10.0, 5.0, 2.5):
            thresholds = np.arange(170.0, 125.0, -granularity)
            frontier = []
            for threshold in thresholds:
                selection = selector.select(float(threshold))
                vdd = voltage.min_voltage_for_slack(
                    float(threshold), 180.0)
                frontier.append((float(threshold),
                                 selection.n_weights
                                 + selection.n_activations, vdd))
            results[granularity] = frontier
        return results

    results = run_once(benchmark, sweep)
    print()
    for granularity, frontier in results.items():
        best_vdd = min(v for __, __s, v in frontier)
        points = len(frontier)
        print(f"granularity {granularity:4.1f} ps: {points:2d} search "
              f"points, lowest feasible vdd {best_vdd:.2f} V")
        for threshold, survivors, vdd in frontier:
            print(f"    {threshold:6.1f} ps -> {survivors:3d} values, "
                  f"{vdd:.2f} V")

    # Finer grids include every coarse point, so the reachable frontier
    # can only improve (weakly).
    coarse_best = min(v for *_rest, v in results[10.0])
    fine_best = min(v for *_rest, v in results[2.5])
    assert fine_best <= coarse_best
    # ... at the cost of proportionally more search points (runtime).
    assert len(results[2.5]) > len(results[10.0]) * 3
