"""Benchmark regenerating Fig. 2 (per-weight average power)."""

from conftest import run_once

from repro.experiments import fig2


def test_fig2_weight_power(benchmark, scale):
    result = run_once(benchmark, fig2.run, scale)
    print()
    print(fig2.format_series(result))
    summary = result.summary()
    print(f"summary: {summary}")

    # Fig. 2 shape: zero weight is by far the cheapest; the digit-dense
    # -105 anchors the top of the curve; a meaningful fraction of values
    # sits below the 900 uW threshold.
    table = result.table
    assert table.power_of(0) == table.power_uw.min()
    assert summary["w-105_uw"] > summary["w-2_uw"]
    assert 0 < result.n_below_threshold < table.weights.size
