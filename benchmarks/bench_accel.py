"""Benchmark the vectorized accelerator power model.

:meth:`~repro.systolic.energy.ArrayPowerModel.layer_power` reduces a
whole tile schedule with one ``np.bincount`` over the stationary weight
values; the original implementation (kept as
:meth:`~repro.systolic.energy.ArrayPowerModel.layer_power_reference`)
loops over tiles and fancy-indexes the per-PE dynamic LUT per tile.
This benchmark pits the two against each other on realistic pruned
layer shapes across several array geometries, asserting before timing
anything that

* the one-shot bincount and the per-tile counting loop produce
  **bit-equal** :class:`~repro.systolic.energy.ScheduleCounts` (the
  counts are exact integers in float64), so ``vectorized=True`` and
  ``vectorized=False`` yield bit-identical power, and
* the vectorized result agrees with the reference oracle to float
  round-off (the oracle sums per-tile in a different association
  order).

The characterization table is synthetic — no gate-level simulation —
so the benchmark isolates the array-model reduction itself.  Results
go to ``BENCH_accel.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_accel.py
    PYTHONPATH=src python benchmarks/bench_accel.py --quick

The full run enforces the PR's acceptance floor (vectorized >= 2x the
reference loop summed over the workload); ``--quick`` shrinks the
repeat count for CI smoke and only asserts the vectorized path is not
slower.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.power.characterization import WeightPowerTable  # noqa: E402
from repro.systolic import (  # noqa: E402
    OPTIMIZED_HW,
    STANDARD_HW,
    ArrayPowerModel,
    MacPowerParams,
    SystolicConfig,
    schedule_matmul,
    schedule_value_counts,
)

#: A small CNN's layer mix: (K, N, M) matmul shapes.
WORKLOADS = (
    (75, 16, 1024),    # stem conv
    (144, 32, 256),    # mid conv
    (288, 64, 64),     # late conv
    (256, 10, 1),      # classifier
)

GEOMETRIES = (16, 32, 64)


def synthetic_table(rng: np.random.Generator) -> WeightPowerTable:
    """A full-range characterization table with plausible magnitudes."""
    weights = np.arange(-127, 128)
    dynamic = 300.0 + 2.5 * np.abs(weights) + 40.0 * rng.random(
        weights.size)
    return WeightPowerTable(weights=weights,
                            power_uw=dynamic + 12.0,
                            dynamic_uw=dynamic,
                            leakage_uw=12.0,
                            clock_period_ps=450.0)


def build_cases(rng: np.random.Generator):
    """(config, model, schedule, weights) per geometry x layer shape."""
    table = synthetic_table(rng)
    cases = []
    for size in GEOMETRIES:
        config = SystolicConfig(rows=size, cols=size)
        model = ArrayPowerModel(config, MacPowerParams(table=table))
        for k, n, m in WORKLOADS:
            weights = rng.integers(-127, 128, (k, n))
            weights[rng.random(weights.shape) < 0.5] = 0  # pruned net
            cases.append((config, model,
                          schedule_matmul(k, n, m, config), weights))
    return cases


def verify(cases) -> float:
    """Bit-equality and oracle agreement; returns the worst relative
    deviation against the reference."""
    worst = 0.0
    for __, model, schedule, weights in cases:
        fast = schedule_value_counts(schedule, weights, vectorized=True)
        slow = schedule_value_counts(schedule, weights,
                                     vectorized=False)
        assert np.array_equal(fast.weight_counts, slow.weight_counts)
        assert fast.tile_pe_cycles == slow.tile_pe_cycles
        assert fast.idle_row_pe_cycles == slow.idle_row_pe_cycles
        assert fast.unused_col_pe_cycles == slow.unused_col_pe_cycles
        assert fast.total_cycles == slow.total_cycles
        for variant in (STANDARD_HW, OPTIMIZED_HW):
            vec = model.layer_power(schedule, weights, variant)
            loop = model.layer_power(schedule, weights, variant,
                                     vectorized=False)
            assert vec == loop, "vectorized != per-tile counting loop"
            ref = model.layer_power_reference(schedule, weights,
                                              variant)
            for got, want in ((vec.dynamic_uw, ref.dynamic_uw),
                              (vec.leakage_uw, ref.leakage_uw)):
                assert np.isclose(got, want, rtol=1e-9), \
                    f"vectorized {got} vs reference {want}"
                if want:
                    worst = max(worst, abs(got - want) / abs(want))
    return worst


def bench(cases, repeats: int):
    """Summed wall time of each implementation over the workload."""
    def run_all(fn_name):
        start = time.perf_counter()
        for __ in range(repeats):
            for __, model, schedule, weights in cases:
                fn = getattr(model, fn_name)
                fn(schedule, weights, OPTIMIZED_HW)
        return (time.perf_counter() - start) / repeats

    # Warm-up, then time.
    run_all("layer_power")
    run_all("layer_power_reference")
    return {
        "vectorized_s": run_all("layer_power"),
        "reference_s": run_all("layer_power_reference"),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: fewer repeats, floor relaxed "
                             "to 'not slower'")
    parser.add_argument("--json", default=None, metavar="FILE",
                        help="result file (default: BENCH_accel.json "
                             "next to this script)")
    args = parser.parse_args(argv)

    rng = np.random.default_rng(0)
    cases = build_cases(rng)
    worst = verify(cases)
    print(f"verified: counts bit-equal, vectorized == loop, "
          f"oracle agreement worst rel dev {worst:.2e}")

    repeats = 3 if args.quick else 10
    times = bench(cases, repeats)
    speedup = times["reference_s"] / times["vectorized_s"]
    print(f"layer_power (bincount):   {times['vectorized_s'] * 1e3:8.2f}"
          f" ms/workload")
    print(f"layer_power_reference:    {times['reference_s'] * 1e3:8.2f}"
          f" ms/workload")
    print(f"speedup: {speedup:.2f}x over "
          f"{len(cases)} (geometry x layer) cases")

    floor = 1.0 if args.quick else 2.0
    assert speedup >= floor, (
        f"vectorized layer power must be >= {floor}x the reference "
        f"loop, measured {speedup:.2f}x")

    payload = {
        "benchmark": "accel_layer_power",
        "quick": args.quick,
        "repeats": repeats,
        "cases": len(cases),
        "geometries": list(GEOMETRIES),
        "workloads": [list(w) for w in WORKLOADS],
        "times": times,
        "speedup": speedup,
        "floor": floor,
        "worst_rel_dev_vs_reference": worst,
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "numpy": np.__version__,
        },
    }
    out = Path(args.json) if args.json else \
        Path(__file__).resolve().parent / "BENCH_accel.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"results written to {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
