"""Microbenchmarks of the simulation substrate itself.

These exercise the throughput-critical inner loops (vectorized logic
simulation, dynamic timing, the systolic matmul) with real
pytest-benchmark statistics — useful when optimizing the engines.
"""

import numpy as np
import pytest

from repro.cells import default_library
from repro.netlist import build_mac_unit
from repro.sim.dynamic_timing import dynamic_arrival_times
from repro.sim.logic import bus_inputs, evaluate
from repro.systolic import SystolicArray

MAC = build_mac_unit()
LIB = default_library()
BATCH = 4096


def _mac_inputs(seed):
    rng = np.random.default_rng(seed)
    feed = bus_inputs("act", rng.integers(-128, 128, BATCH), 8)
    feed.update(bus_inputs("w", rng.integers(-128, 128, BATCH), 8))
    feed.update(bus_inputs("psum", rng.integers(-(1 << 21), 1 << 21,
                                                BATCH), 22))
    return feed


def test_logic_sim_throughput(benchmark):
    """Batched Boolean evaluation of the full MAC netlist."""
    feed = _mac_inputs(0)
    packed = MAC.full.packed()
    benchmark(evaluate, packed, feed)


def test_dynamic_timing_throughput(benchmark):
    """Arrival-time propagation through the multiplier."""
    rng = np.random.default_rng(1)
    before = bus_inputs("act", rng.integers(-128, 128, BATCH), 8)
    before.update(bus_inputs("w", np.full(BATCH, -105), 8))
    after = bus_inputs("act", rng.integers(-128, 128, BATCH), 8)
    after.update(bus_inputs("w", np.full(BATCH, -105), 8))
    packed = MAC.multiplier.packed()
    benchmark(dynamic_arrival_times, packed, LIB, before, after)


def test_systolic_layer_throughput(benchmark):
    """Functional tiled matmul of a mid-size conv layer."""
    rng = np.random.default_rng(2)
    weights = rng.integers(-127, 128, (150, 32))
    acts = rng.integers(-128, 128, (150, 1024))
    array = SystolicArray()
    out = benchmark(array.run_layer, weights, acts)
    np.testing.assert_array_equal(out, weights.T @ acts)
