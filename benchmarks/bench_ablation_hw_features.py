"""Ablation: which gating feature buys the Standard->Optimized gap?

The paper's Optimized HW bundles two features — zero-weight clock gating
and unused-column power gating.  This bench isolates each one's
contribution across sparsity levels, explaining the Standard-vs-Optimized
columns of Table I.
"""

import numpy as np
from conftest import run_once

from repro.power.characterization import WeightPowerTable
from repro.systolic import (
    ArrayPowerModel,
    HardwareVariant,
    MacPowerParams,
    OPTIMIZED_HW,
    STANDARD_HW,
    SystolicConfig,
    schedule_matmul,
)

CLOCK_GATE_ONLY = HardwareVariant("clock-gate only",
                                  clock_gate_zero_weight=True)
POWER_GATE_ONLY = HardwareVariant("power-gate only",
                                  power_gate_unused_columns=True)


def _table():
    weights = np.arange(-127, 128)
    dynamic = 250.0 + 4.5 * np.abs(weights)
    dynamic[127] = 40.0
    return WeightPowerTable(
        weights=weights, power_uw=dynamic + 11.0, dynamic_uw=dynamic,
        leakage_uw=11.0, clock_period_ps=180.0)


def test_ablation_hw_gating_features(benchmark, scale):
    config = SystolicConfig()
    model = ArrayPowerModel(config, MacPowerParams(table=_table()))
    # A LeNet-like layer: 16 of 64 columns used, 50% zero weights.
    schedule = schedule_matmul(150, 16, 800, config)
    rng = np.random.default_rng(0)

    def sweep():
        rows = {}
        for sparsity in (0.0, 0.5, 0.9):
            weights = rng.integers(-127, 128, (150, 16))
            weights[rng.random(weights.shape) < sparsity] = 0
            rows[sparsity] = {
                variant.name: model.layer_power(schedule, weights,
                                                variant)
                for variant in (STANDARD_HW, CLOCK_GATE_ONLY,
                                POWER_GATE_ONLY, OPTIMIZED_HW)
            }
        return rows

    rows = run_once(benchmark, sweep)
    print()
    print("sparsity  variant            total[mW]  dyn[mW]  leak[mW]")
    for sparsity, variants in rows.items():
        for name, power in variants.items():
            print(f"{sparsity:8.1f}  {name:17}  "
                  f"{power.total_uw / 1000:9.1f}  "
                  f"{power.dynamic_uw / 1000:7.1f}  "
                  f"{power.leakage_uw / 1000:8.1f}")

    for sparsity, variants in rows.items():
        std = variants[STANDARD_HW.name]
        opt = variants[OPTIMIZED_HW.name]
        cg = variants[CLOCK_GATE_ONLY.name]
        pg = variants[POWER_GATE_ONLY.name]
        # each feature alone sits between Standard and Optimized
        assert opt.total_uw <= cg.total_uw <= std.total_uw + 1e-6
        assert opt.total_uw <= pg.total_uw <= std.total_uw + 1e-6
        # power gating is what kills leakage (Table I discussion)
        assert pg.leakage_uw < std.leakage_uw
        assert cg.leakage_uw == std.leakage_uw
