"""Ablation benchmarks for the design choices the paper fixes silently.

The paper hard-codes three knobs: 50 partial-sum bins, 20 randomized
removal restarts, 10 000 sampled transitions per weight.  These benches
quantify how sensitive the results are to each.
"""

import numpy as np
from conftest import run_once

from repro.cells import default_library
from repro.netlist import build_mac_unit
from repro.power import (
    BinnedTransitions,
    PartialSumBinner,
    TransitionDistribution,
    WeightPowerCharacterizer,
)
from repro.timing import DelaySelector, WeightDelayProfiler, \
    WeightTimingTable

_MAC = build_mac_unit()
_LIB = default_library()


def _psum_stream(n=20000, seed=0):
    rng = np.random.default_rng(seed)
    # random-walk partial sums: realistic near-diagonal transitions
    steps = rng.integers(-(1 << 12), 1 << 12, n)
    return np.clip(np.cumsum(steps), -(1 << 20), 1 << 20)


def _characterize(n_bins, n_samples, weights, seed=0):
    stream = _psum_stream(seed=seed)
    binner = PartialSumBinner(n_bins=n_bins).fit(
        stream, rng=np.random.default_rng(seed))
    binned = BinnedTransitions.from_stream(binner, stream)
    act = TransitionDistribution.diagonal(256)
    characterizer = WeightPowerCharacterizer(
        _MAC, _LIB, act, binned, n_samples=n_samples)
    return characterizer.characterize(weights, seed=seed)


WEIGHTS = [-105, -64, -32, -8, -2, 0, 2, 8, 32, 64, 105, 127]


def test_ablation_psum_bins(benchmark, scale):
    """Per-weight power vs number of partial-sum bins (paper: 50)."""

    def sweep():
        return {n_bins: _characterize(n_bins, 600, WEIGHTS)
                for n_bins in (5, 20, 50)}

    tables = run_once(benchmark, sweep)
    print()
    reference = tables[50]
    order_ref = np.argsort(reference.power_uw)
    for n_bins, table in tables.items():
        corr = np.corrcoef(table.power_uw, reference.power_uw)[0, 1]
        same_order = (np.argsort(table.power_uw) == order_ref).mean()
        print(f"bins={n_bins:3d}: corr vs 50-bin reference "
              f"{corr:.3f}, rank agreement {same_order:.2f}")
        # The per-weight power *ordering* is what selection consumes;
        # it must be robust to the bin count.
        assert corr > 0.95


def test_ablation_characterization_samples(benchmark, scale):
    """Convergence of per-weight power vs sample count (paper: 10k)."""

    def sweep():
        return {n: _characterize(20, n, WEIGHTS, seed=1)
                for n in (200, 1000, 4000)}

    tables = run_once(benchmark, sweep)
    print()
    reference = tables[4000]
    previous_error = None
    for n, table in sorted(tables.items()):
        error = np.abs(table.power_uw - reference.power_uw).mean()
        print(f"samples={n:5d}: mean |err| vs 4000-sample reference "
              f"{error:7.2f} uW")
        if previous_error is not None:
            assert error <= previous_error + 15.0  # converging
        previous_error = error


def test_ablation_removal_restarts(benchmark, scale):
    """Quality of the randomized removal vs restart count (paper: 20)."""
    profiler = WeightDelayProfiler(_MAC, _LIB)
    act_from, act_to = profiler.all_transitions()
    rng = np.random.default_rng(2)
    chosen = rng.choice(act_from.size, 4000, replace=False)
    table = WeightTimingTable.characterize(
        profiler, weights=WEIGHTS,
        transitions=(act_from[chosen], act_to[chosen]), floor_ps=90.0)

    def sweep():
        survivors = {}
        for restarts in (1, 5, 20):
            selector = DelaySelector(table, n_restarts=restarts)
            result = selector.select(150.0)
            survivors[restarts] = (result.n_weights
                                   + result.n_activations)
        return survivors

    survivors = run_once(benchmark, sweep)
    print()
    for restarts, kept in survivors.items():
        print(f"restarts={restarts:2d}: surviving values {kept}")
    # More restarts can only improve the best-of score.
    assert survivors[20] >= survivors[1]
    assert survivors[5] >= survivors[1]
