"""Benchmark regenerating Fig. 4 (operand transition distributions)."""

from conftest import run_once

from repro.experiments import fig4


def test_fig4_transition_distributions(benchmark, scale):
    result = run_once(benchmark, fig4.run, scale)
    print()
    print(fig4.format_heatmap(result.activation.matrix,
                              label="(a) activation transitions"))
    print(fig4.format_heatmap(result.psum_binned.distribution.matrix,
                              cells=25,
                              label="(b) partial-sum bin transitions"))
    summary = result.summary()
    print(f"summary: {summary}")

    # Fig. 4 shape: real traffic is diagonal-heavy for activations and
    # clearly non-uniform for partial-sum bins.
    assert summary["act_diagonal_mass_16"] > 0.3
    assert summary["psum_nonuniformity"] > 2.0
    assert result.n_act_transitions > 1000
