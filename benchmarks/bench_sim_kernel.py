"""Benchmark the gate-simulation kernels: legacy vs levelized vs packed.

Times the two workload shapes every experiment bottoms out in, on the
default MAC unit:

* **power-shaped** — one stacked before/after evaluation of the full
  MAC plus per-net toggle-rate extraction (the Sec. III-A per-weight
  power characterization inner loop);
* **DTA-shaped** — per-transition arrival-time propagation through the
  multiplier with a frozen weight (the Sec. III-B per-weight dynamic
  timing analysis inner loop);
* **characterization-table-shaped** — the full 255-weight power table,
  per-weight loop (the pre-megabatch implementation, frozen below as
  the baseline) vs the one-launch weight-batched path, plus the
  analogous per-weight vs flat-batched timing table.

Each workload runs under the legacy interpreted walk (the pre-kernel
evaluator, kept as ``kernel="reference"``), the levelized boolean
kernel, and the bit-packed word kernel, asserting all three agree
bit-for-bit before timing anything.  A fourth section pits the
**compiled level-program kernel** (numba JIT when the optional extra
is installed, vectorized numpy program executor otherwise — see
:mod:`repro.sim.compiled`) against the packed group walk on the same
two shapes, with the streaming ``dynamic_bus_arrivals`` entry point on
the DTA side.  Results (wall times, sample throughputs, speedups,
netlist/schedule stats) are written to a machine-readable JSON to seed
the perf trajectory; the characterization-table section goes to its
own ``BENCH_char_batch.json`` and the compiled-kernel section to
``BENCH_compiled_kernel.json``.  Every platform block records the
active kernel and the numba probe, so a result is never read against
the wrong executor.

Usage::

    PYTHONPATH=src python benchmarks/bench_sim_kernel.py
    PYTHONPATH=src python benchmarks/bench_sim_kernel.py --quick

The full run enforces the PR's acceptance floors (packed >= 5x legacy
on the power shape, fused DTA >= 3x legacy); ``--quick`` shrinks the
batches for CI smoke and only asserts the packed kernel is not slower
than the legacy one.  The one-launch characterization floor (>= 3x
over the per-weight-loop baseline, serial) holds in *both* modes, as
does the compiled-kernel fallback floor (not slower than packed); with
the JIT executor active the full run additionally demands >= 2x on
the streaming DTA shape.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.cells import default_library  # noqa: E402
from repro.netlist import build_mac_unit  # noqa: E402
from repro.power.binning import (  # noqa: E402
    BinnedTransitions,
    PartialSumBinner,
)
from repro.power.characterization import (  # noqa: E402
    WeightPowerCharacterizer,
    weight_seed_sequence,
)
from repro.power.transitions import (  # noqa: E402
    TransitionDistribution,
    code_to_value,
)
from repro.sim.compiled import (  # noqa: E402
    default_kernel,
    jit_status,
    set_process_kernel,
)
from repro.sim.dynamic_timing import (  # noqa: E402
    STREAM_WINDOW_SAMPLES,
    dynamic_arrival_times,
    dynamic_arrival_times_reference,
    dynamic_bus_arrivals,
)
from repro.sim.logic import (  # noqa: E402
    WORD_DTYPE,
    bus_inputs,
    evaluate,
    evaluate_words,
)
from repro.sim.switching import (  # noqa: E402
    paired_toggle_rates,
    paired_toggle_rates_words,
)
from repro.timing.profile import (  # noqa: E402
    WeightDelayProfiler,
    WeightTimingTable,
)

#: Acceptance floors of the full benchmark (ISSUE 4).
POWER_SPEEDUP_FLOOR = 5.0
DTA_SPEEDUP_FLOOR = 3.0
#: ``--quick`` floor: packed must not be slower than legacy.
QUICK_SPEEDUP_FLOOR = 1.0
#: One-launch characterization floor (ISSUE 6) — asserted in both
#: modes: the full-table megabatch path must beat the frozen
#: per-weight-loop baseline by at least this much, serially.
CHAR_SPEEDUP_FLOOR = 3.0
#: Compiled-kernel floors (ISSUE 7): the fallback numpy program
#: executor must never be slower than the packed group walk (both
#: modes); the JIT executor, when active, must additionally deliver
#: this much on the streaming DTA shape (full mode).
COMPILED_FALLBACK_FLOOR = 1.0
COMPILED_DTA_JIT_FLOOR = 2.0


def _best_of(fn, repeats: int) -> float:
    """Best wall time of ``repeats`` runs (least-noise estimator)."""
    best = float("inf")
    for __ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _power_feed(mac, n_samples: int, seed: int = 0):
    """A stacked before/after stimulus batch for the full MAC."""
    rng = np.random.default_rng(seed)
    feed = bus_inputs("act", rng.integers(-128, 128, 2 * n_samples), 8)
    feed.update(bus_inputs("w", np.full(2 * n_samples, -105), 8))
    feed.update(bus_inputs(
        "psum", rng.integers(-(1 << 21), 1 << 21, 2 * n_samples), 22))
    return feed


def bench_power_shape(mac, n_samples: int, repeats: int) -> dict:
    """Stacked evaluation + toggle rates, one per kernel."""
    packed = mac.full.packed()
    feed = _power_feed(mac, n_samples)

    def legacy():
        return paired_toggle_rates(
            evaluate(packed, feed, kernel="reference"))

    def levelized():
        return paired_toggle_rates(
            evaluate(packed, feed, kernel="levelized"))

    def packed_kernel():
        return paired_toggle_rates_words(
            evaluate_words(packed, feed, pair_halves=True))

    reference_rates = legacy()
    np.testing.assert_array_equal(reference_rates, levelized())
    np.testing.assert_array_equal(reference_rates, packed_kernel())

    legacy_s = _best_of(legacy, repeats)
    levelized_s = _best_of(levelized, repeats)
    packed_s = _best_of(packed_kernel, repeats)
    return {
        "n_samples": n_samples,
        "legacy_s": legacy_s,
        "levelized_s": levelized_s,
        "packed_s": packed_s,
        "legacy_samples_per_s": 2 * n_samples / legacy_s,
        "packed_samples_per_s": 2 * n_samples / packed_s,
        "speedup_levelized": legacy_s / levelized_s,
        "speedup_packed": legacy_s / packed_s,
    }


def bench_dta_shape(mac, library, n_transitions: int,
                    repeats: int) -> dict:
    """Arrival-time propagation, legacy two-pass vs fused levelized.

    The fused side reuses one preallocated arrival buffer across calls,
    exactly as :class:`~repro.timing.profile.WeightDelayProfiler` does
    across its chunks and weights (the legacy evaluator allocated a
    fresh matrix per call, so the allocation cost is part of what the
    kernel removed).
    """
    packed = mac.multiplier.packed()
    rng = np.random.default_rng(1)
    weight_bus = bus_inputs("w", np.full(n_transitions, -105), 8)
    before = bus_inputs("act", rng.integers(-128, 128, n_transitions), 8)
    before.update(weight_bus)
    after = bus_inputs("act", rng.integers(-128, 128, n_transitions), 8)
    after.update(weight_bus)
    arrivals_buf = np.zeros((len(packed), n_transitions))

    def legacy():
        return dynamic_arrival_times_reference(packed, library, before,
                                               after)

    def fused():
        return dynamic_arrival_times(packed, library, before, after,
                                     out=arrivals_buf)

    ref_arrivals, ref_toggled = legacy()
    new_arrivals, new_toggled = fused()
    new_arrivals = new_arrivals.copy()  # reused buffer; snapshot first
    np.testing.assert_array_equal(ref_arrivals, new_arrivals)
    np.testing.assert_array_equal(ref_toggled, new_toggled)

    legacy_s = _best_of(legacy, repeats)
    fused_s = _best_of(fused, repeats)
    return {
        "n_transitions": n_transitions,
        "legacy_s": legacy_s,
        "fused_s": fused_s,
        "legacy_transitions_per_s": n_transitions / legacy_s,
        "fused_transitions_per_s": n_transitions / fused_s,
        "speedup_fused": legacy_s / fused_s,
    }


def bench_compiled_kernel(mac, library, n_power: int, n_dta: int,
                          repeats: int) -> dict:
    """Compiled level-program kernel vs the packed group walk.

    Power shape: one stacked paired evaluation of the full MAC plus
    toggle rates, per kernel.  DTA shape: the packed side is the dense
    fused engine read at the product bus *with the packed word kernel*
    (exactly what the profiler ran before this backend existed — the
    dense engine has no kernel argument, so the process default pins
    it); the compiled side is the streaming ``dynamic_bus_arrivals``
    entry point with the profiler's reused scratch buffers.
    Bit-for-bit equality is asserted before timing.  The DTA fallback
    margin is structurally thin (the levelized propagation dominates
    and is shared), so that shape gets extra repeats to keep the
    best-of estimate out of the noise floor.
    """
    packed_full = mac.full.packed()
    packed_full.program  # build outside the timed region, like the
    packed_mult = mac.multiplier.packed()  # pipeline does
    packed_mult.program
    feed = _power_feed(mac, n_power)

    def power_packed():
        return paired_toggle_rates_words(
            evaluate_words(packed_full, feed, pair_halves=True,
                           kernel="packed"))

    def power_compiled():
        return paired_toggle_rates_words(
            evaluate_words(packed_full, feed, pair_halves=True,
                           kernel="compiled"))

    np.testing.assert_array_equal(power_packed(), power_compiled())
    power_packed_s = _best_of(power_packed, repeats)
    power_compiled_s = _best_of(power_compiled, repeats)

    rng = np.random.default_rng(1)
    weight_bus = bus_inputs("w", np.full(n_dta, -105), 8)
    before = bus_inputs("act", rng.integers(-128, 128, n_dta), 8)
    before.update(weight_bus)
    after = bus_inputs("act", rng.integers(-128, 128, n_dta), 8)
    after.update(weight_bus)
    nets = np.asarray(
        mac.multiplier.output_bus("product", mac.product_bits),
        dtype=np.int64)
    dense_buf = np.zeros((len(packed_mult), n_dta))
    words_buf = np.zeros(
        (len(packed_mult), 2 * ((n_dta + 63) // 64)), dtype=WORD_DTYPE)
    slab_buf = np.zeros(
        (len(packed_mult), min(STREAM_WINDOW_SAMPLES, n_dta)))

    def dta_packed():
        set_process_kernel("packed")
        try:
            arrivals, __ = dynamic_arrival_times(
                packed_mult, library, before, after, out=dense_buf)
            return arrivals[nets]
        finally:
            set_process_kernel(None)

    def dta_compiled():
        return dynamic_bus_arrivals(
            packed_mult, library, before, after, nets,
            kernel="compiled", words_out=words_buf,
            arrivals_out=slab_buf)

    np.testing.assert_array_equal(dta_packed(), dta_compiled())
    dta_repeats = max(repeats, 9)
    dta_packed_s = _best_of(dta_packed, dta_repeats)
    dta_compiled_s = _best_of(dta_compiled, dta_repeats)

    return {
        "executor": jit_status()["active"] and "jit" or "numpy",
        "program": {
            "mac_full": packed_full.program.stats(),
            "multiplier": packed_mult.program.stats(),
        },
        "power_shape": {
            "n_samples": n_power,
            "packed_s": power_packed_s,
            "compiled_s": power_compiled_s,
            "compiled_samples_per_s": 2 * n_power / power_compiled_s,
            "speedup_compiled": power_packed_s / power_compiled_s,
        },
        "dta_shape": {
            "n_transitions": n_dta,
            "packed_dense_s": dta_packed_s,
            "compiled_streaming_s": dta_compiled_s,
            "compiled_transitions_per_s": n_dta / dta_compiled_s,
            "speedup_compiled": dta_packed_s / dta_compiled_s,
        },
        "bitwise_equal": True,
    }


def _build_characterizer(n_samples: int) -> WeightPowerCharacterizer:
    """Paper-shaped smoke characterization setup (50 psum bins)."""
    rng = np.random.default_rng(0)
    stream = rng.integers(-(1 << 18), 1 << 18, 6000)
    binner = PartialSumBinner(n_bins=50).fit(stream, rng=rng)
    return WeightPowerCharacterizer(
        build_mac_unit(), default_library(),
        TransitionDistribution.diagonal(256),
        BinnedTransitions.from_stream(binner, stream),
        n_samples=n_samples,
    )


def _per_weight_loop_energies(char, weights, seed: int) -> np.ndarray:
    """The pre-megabatch per-weight loop, frozen as the baseline.

    ``rng.choice``-based stimulus sampling plus a dense per-weight
    weight bus and one packed evaluation per weight — exactly the
    characterization inner loop this PR's one-launch path replaces.
    Bit-for-bit equal to both current paths (asserted before timing).
    """
    energies = np.empty(len(weights), dtype=np.float64)
    n = char.n_samples
    act = char.act_transitions
    bt = char.psum_transitions
    dist = bt.distribution
    for i, weight in enumerate(weights):
        rng = np.random.default_rng(
            weight_seed_sequence(seed, int(weight)))
        drawn = rng.choice(act.matrix.size, size=n,
                           p=act.matrix.ravel())
        acts = code_to_value(
            np.concatenate([drawn // act.n_codes, drawn % act.n_codes]),
            char.mac.act_bits)
        drawn = rng.choice(dist.matrix.size, size=n,
                           p=dist.matrix.ravel())
        halves = []
        for bin_ids in (drawn // dist.n_codes, drawn % dist.n_codes):
            out = np.empty(n, dtype=np.int64)
            for b in range(bt.binner.n_bins):
                mask = bin_ids == b
                count = int(mask.sum())
                if count:
                    out[mask] = rng.choice(bt.binner._exemplars[b],
                                           size=count)
            halves.append(out)
        psums = np.concatenate(halves)

        feed = bus_inputs("act", acts, char.mac.act_bits)
        feed.update(bus_inputs(
            "w", np.full(2 * n, int(weight), dtype=np.int64),
            char.mac.weight_bits))
        feed.update(bus_inputs("psum", psums, char.mac.psum_bits))
        values = evaluate_words(char._packed, feed, pair_halves=True)
        rates = paired_toggle_rates_words(values)
        energies[i] = float(np.dot(rates, char._energies))
    return energies


def bench_char_table(n_samples: int, n_transitions: int,
                     repeats: int) -> dict:
    """Full characterization tables: per-weight loop vs one launch."""
    char = _build_characterizer(n_samples)
    weights = list(range(-127, 128))
    seed = 2023

    baseline = _per_weight_loop_energies(char, weights, seed)
    oracle = char.dynamic_energies_fj(weights, seed)
    batched = char.dynamic_energies_fj_batched(weights, seed)
    np.testing.assert_array_equal(oracle, baseline)
    np.testing.assert_array_equal(batched, baseline)

    loop_s = _best_of(
        lambda: _per_weight_loop_energies(char, weights, seed), repeats)
    oracle_s = _best_of(
        lambda: char.dynamic_energies_fj(weights, seed), repeats)
    batched_s = _best_of(
        lambda: char.dynamic_energies_fj_batched(weights, seed),
        repeats)

    profiler = WeightDelayProfiler(char.mac, char.library)
    timing_weights = list(range(-127, 128, 4))

    def timing_loop():
        return WeightTimingTable.characterize(
            profiler, timing_weights, n_transitions=n_transitions,
            seed=seed, batch_weights=1)

    def timing_batched():
        return WeightTimingTable.characterize(
            profiler, timing_weights, n_transitions=n_transitions,
            seed=seed)

    loop_table = timing_loop()
    batched_table = timing_batched()
    np.testing.assert_array_equal(loop_table.max_delay_ps,
                                  batched_table.max_delay_ps)
    np.testing.assert_array_equal(loop_table.combo_weight,
                                  batched_table.combo_weight)
    np.testing.assert_array_equal(loop_table.combo_delay_ps,
                                  batched_table.combo_delay_ps)
    assert loop_table.time_scale == batched_table.time_scale

    timing_loop_s = _best_of(timing_loop, repeats)
    timing_batched_s = _best_of(timing_batched, repeats)

    return {
        "power": {
            "n_weights": len(weights),
            "n_samples": n_samples,
            "per_weight_loop_s": loop_s,
            "per_weight_oracle_s": oracle_s,
            "one_launch_s": batched_s,
            "weights_per_s": len(weights) / batched_s,
            "speedup_one_launch": loop_s / batched_s,
            "bitwise_equal": True,
        },
        "timing": {
            "n_weights": len(timing_weights),
            "n_transitions": n_transitions,
            "per_weight_loop_s": timing_loop_s,
            "one_launch_s": timing_batched_s,
            "speedup_one_launch": timing_loop_s / timing_batched_s,
            "bitwise_equal": True,
        },
    }


def run(quick: bool, json_path: Path, repeats: int,
        char_json_path: Path = Path("BENCH_char_batch.json"),
        compiled_json_path: Path = Path("BENCH_compiled_kernel.json"),
        ) -> dict:
    mac = build_mac_unit()
    library = default_library()
    n_power = 2000 if quick else 10000
    n_dta = 1024 if quick else 8192
    n_char = 800 if quick else 1500
    n_char_transitions = 200 if quick else 400

    platform_block = {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "sim_kernel": default_kernel(),
        "jit": jit_status(),
    }
    full_stats = mac.full.packed().schedule.stats()
    mult_stats = mac.multiplier.packed().schedule.stats()
    print(f"MAC netlist: {full_stats['n_gates']} gates / "
          f"{full_stats['n_nets']} nets, depth {full_stats['n_levels']} "
          f"levels, {full_stats['n_groups']} type-groups")
    print(f"compiled-kernel executor: {jit_status()['reason']}")

    power = bench_power_shape(mac, n_power, repeats)
    print(f"power-shaped ({n_power} stacked pairs): "
          f"legacy {power['legacy_s'] * 1e3:8.1f} ms | "
          f"levelized {power['levelized_s'] * 1e3:7.1f} ms "
          f"({power['speedup_levelized']:.1f}x) | "
          f"packed {power['packed_s'] * 1e3:7.1f} ms "
          f"({power['speedup_packed']:.1f}x)")

    dta = bench_dta_shape(mac, library, n_dta, repeats)
    print(f"DTA-shaped   ({n_dta} transitions):   "
          f"legacy {dta['legacy_s'] * 1e3:8.1f} ms | "
          f"fused packed {dta['fused_s'] * 1e3:7.1f} ms "
          f"({dta['speedup_fused']:.1f}x)")

    compiled = bench_compiled_kernel(mac, library, n_power, n_dta,
                                     repeats)
    comp_power = compiled["power_shape"]
    comp_dta = compiled["dta_shape"]
    print(f"compiled ({compiled['executor']}) power: "
          f"packed {comp_power['packed_s'] * 1e3:8.1f} ms | "
          f"compiled {comp_power['compiled_s'] * 1e3:7.1f} ms "
          f"({comp_power['speedup_compiled']:.2f}x)")
    print(f"compiled ({compiled['executor']}) DTA:   "
          f"dense packed {comp_dta['packed_dense_s'] * 1e3:8.1f} ms | "
          f"streaming {comp_dta['compiled_streaming_s'] * 1e3:7.1f} ms "
          f"({comp_dta['speedup_compiled']:.2f}x)")

    char = bench_char_table(n_char, n_char_transitions, repeats)
    char_power = char["power"]
    char_timing = char["timing"]
    print(f"char-table power  ({char_power['n_weights']} weights x "
          f"{n_char} samples): per-weight loop "
          f"{char_power['per_weight_loop_s'] * 1e3:8.1f} ms | "
          f"one-launch {char_power['one_launch_s'] * 1e3:7.1f} ms "
          f"({char_power['speedup_one_launch']:.1f}x)")
    print(f"char-table timing ({char_timing['n_weights']} weights x "
          f"{n_char_transitions} transitions): per-weight loop "
          f"{char_timing['per_weight_loop_s'] * 1e3:8.1f} ms | "
          f"one-launch {char_timing['one_launch_s'] * 1e3:7.1f} ms "
          f"({char_timing['speedup_one_launch']:.1f}x)")

    char_payload = {
        "benchmark": "char_batch",
        "quick": quick,
        "repeats": repeats,
        "platform": platform_block,
        "power_table": char_power,
        "timing_table": char_timing,
        "floors": {"power_speedup": CHAR_SPEEDUP_FLOOR},
    }
    char_json_path.write_text(json.dumps(char_payload, indent=2) + "\n")
    print(f"char-batch results written to {char_json_path}")

    jit_active = jit_status()["active"]
    compiled_dta_floor = (COMPILED_DTA_JIT_FLOOR
                          if jit_active and not quick
                          else COMPILED_FALLBACK_FLOOR)
    compiled_payload = {
        "benchmark": "compiled_kernel",
        "quick": quick,
        "repeats": repeats,
        "platform": platform_block,
        **compiled,
        "floors": {
            "power_speedup": COMPILED_FALLBACK_FLOOR,
            "dta_speedup": compiled_dta_floor,
        },
    }
    compiled_json_path.write_text(
        json.dumps(compiled_payload, indent=2) + "\n")
    print(f"compiled-kernel results written to {compiled_json_path}")

    payload = {
        "benchmark": "sim_kernel",
        "quick": quick,
        "repeats": repeats,
        "platform": platform_block,
        "netlist": {"mac_full": full_stats, "multiplier": mult_stats},
        "power_characterization_shape": power,
        "dta_shape": dta,
        "floors": {
            "power_speedup": (QUICK_SPEEDUP_FLOOR if quick
                              else POWER_SPEEDUP_FLOOR),
            "dta_speedup": (QUICK_SPEEDUP_FLOOR if quick
                            else DTA_SPEEDUP_FLOOR),
        },
    }
    json_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"results written to {json_path}")

    power_floor = QUICK_SPEEDUP_FLOOR if quick else POWER_SPEEDUP_FLOOR
    dta_floor = QUICK_SPEEDUP_FLOOR if quick else DTA_SPEEDUP_FLOOR
    failures = []
    if power["speedup_packed"] < power_floor:
        failures.append(
            f"packed power-shape speedup {power['speedup_packed']:.2f}x "
            f"below the {power_floor:g}x floor")
    if dta["speedup_fused"] < dta_floor:
        failures.append(
            f"fused DTA speedup {dta['speedup_fused']:.2f}x below the "
            f"{dta_floor:g}x floor")
    if char_power["speedup_one_launch"] < CHAR_SPEEDUP_FLOOR:
        failures.append(
            f"one-launch characterization speedup "
            f"{char_power['speedup_one_launch']:.2f}x below the "
            f"{CHAR_SPEEDUP_FLOOR:g}x floor")
    if comp_power["speedup_compiled"] < COMPILED_FALLBACK_FLOOR:
        failures.append(
            f"compiled power-shape speedup "
            f"{comp_power['speedup_compiled']:.2f}x below the "
            f"{COMPILED_FALLBACK_FLOOR:g}x floor (executor: "
            f"{compiled['executor']})")
    if comp_dta["speedup_compiled"] < compiled_dta_floor:
        failures.append(
            f"compiled streaming-DTA speedup "
            f"{comp_dta['speedup_compiled']:.2f}x below the "
            f"{compiled_dta_floor:g}x floor (executor: "
            f"{compiled['executor']})")
    if failures:
        raise SystemExit("FAIL: " + "; ".join(failures))
    print("OK: all speedup floors met")
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark legacy vs levelized vs bit-packed "
                    "gate-simulation kernels on the default MAC")
    parser.add_argument("--quick", action="store_true",
                        help="small batches for CI smoke; only asserts "
                             "the packed kernel is not slower than "
                             "legacy")
    parser.add_argument("--json", type=Path,
                        default=Path("BENCH_sim_kernel.json"),
                        metavar="FILE",
                        help="output path for the machine-readable "
                             "results (default: %(default)s)")
    parser.add_argument("--char-json", type=Path,
                        default=Path("BENCH_char_batch.json"),
                        metavar="FILE",
                        help="output path for the characterization-"
                             "table results (default: %(default)s)")
    parser.add_argument("--compiled-json", type=Path,
                        default=Path("BENCH_compiled_kernel.json"),
                        metavar="FILE",
                        help="output path for the compiled-kernel "
                             "results (default: %(default)s)")
    parser.add_argument("--repeats", type=int, default=3, metavar="N",
                        help="timing repeats; best-of-N is reported "
                             "(default: %(default)s)")
    args = parser.parse_args(argv)
    run(args.quick, args.json, max(1, args.repeats),
        char_json_path=args.char_json,
        compiled_json_path=args.compiled_json)
    return 0


if __name__ == "__main__":
    sys.exit(main())
