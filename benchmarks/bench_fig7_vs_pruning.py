"""Benchmark regenerating Fig. 7 (vs conventional pruning)."""

from conftest import run_once

from repro.experiments import fig7
from repro.experiments.config import NETWORK_SPECS


def test_fig7_vs_pruning(benchmark, scale):
    # Two networks keep the harness fast; pass all four at ci scale.
    specs = NETWORK_SPECS[:2] if scale == "smoke" else NETWORK_SPECS
    result = run_once(benchmark, fig7.run, scale, specs)
    print()
    print(fig7.format_chart(result))

    for label, bars in result.bars.items():
        stages = {bar.stage: bar for bar in bars}
        # Fig. 7 shape: baseline > pruned > proposed on Optimized HW.
        assert stages["Pruned"].power.total_uw < \
            stages["Baseline"].power.total_uw, label
        assert stages["Proposed"].power.total_uw < \
            stages["Pruned"].power.total_uw, label
        # ... with only a slight accuracy loss for the proposed method.
        assert stages["Proposed"].accuracy > \
            stages["Baseline"].accuracy - 0.15, label
