"""Benchmark regenerating Table I (main results, all four networks)."""

from conftest import run_once

from repro.experiments import table1


def test_table1_main_results(benchmark, scale):
    reports = run_once(benchmark, table1.run, scale)
    print()
    print(table1.format_with_reference(reports))

    # Shape assertions: the qualitative Table I claims must hold.
    for report in reports:
        assert report.reduction_opt > 0, report.network
        assert report.reduction_std > 0, report.network
        assert report.power_opt_prop_vs.total_uw < \
            report.power_opt_orig.total_uw
    # LeNet-5 (first row) shows the largest Optimized-HW reduction class.
    assert reports[0].reduction_opt > 30.0
