"""Benchmark regenerating Fig. 9 (delay threshold vs accuracy)."""

from conftest import run_once

from repro.experiments import fig9
from repro.experiments.config import NETWORK_SPECS


def test_fig9_delay_threshold_sweep(benchmark, scale):
    specs = NETWORK_SPECS[:1] if scale == "smoke" else NETWORK_SPECS[:2]
    result = run_once(benchmark, fig9.run, scale, specs)
    print()
    print(fig9.format_series(result))

    for label, series in result.points.items():
        thresholds = [point.threshold_ps for point in series]
        activations = [point.n_activations for point in series]
        assert thresholds == sorted(thresholds, reverse=True), label
        # Fig. 9 shape: tighter delay thresholds keep fewer (or equal)
        # activation values; the loosest threshold keeps all 256.
        assert activations == sorted(activations, reverse=True), label
        assert activations[0] == 256, label
