"""Shared configuration of the benchmark harness.

Each benchmark regenerates one of the paper's tables/figures.  The scale
defaults to ``smoke`` so the whole harness runs in a few minutes; set
``REPRO_BENCH_SCALE=ci`` (or ``paper``) for higher-fidelity runs.
"""

import os

import pytest


@pytest.fixture(scope="session")
def scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "smoke")


def run_once(benchmark, fn, *args, **kwargs):
    """Run a heavy experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                              iterations=1)
