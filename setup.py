"""Setup for environments without the wheel package.

Enables ``pip install -e .`` (and ``pip install -e .[jit]`` for the
optional numba-compiled simulation executor) on offline machines.
"""

from setuptools import find_packages, setup

setup(
    name="repro-powerpruning",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    install_requires=["numpy>=1.24"],
    extras_require={
        # Optional JIT executor for the compiled level-program kernel
        # (repro.sim.compiled).  Everything is bit-for-bit identical
        # without it — the vectorized numpy program executor is the
        # always-available fallback — numba just buys the native
        # gate-walk, the fused XOR+popcount characterization reduction
        # and the streaming DTA kernel.
        "jit": ["numba>=0.57"],
        # Optional HTTP experiment service (repro.service): an async
        # job queue over the sweep engine.  The job layer itself is
        # dependency-free; fastapi/uvicorn only serve it over HTTP
        # (`python -m repro serve`).  Tier-1 tests skip the HTTP layer
        # cleanly when the extra is absent, mirroring the jit extra.
        "service": ["fastapi>=0.100", "uvicorn>=0.23"],
    },
)
